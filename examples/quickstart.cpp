/**
 * @file
 * Quickstart: simulate one imbalanced barrier application on a
 * 16-node machine under the conventional (Baseline) barrier and the
 * thrifty barrier, and compare energy and execution time.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "workloads/app_profile.hh"

int
main()
{
    using namespace tb;

    // 1. Describe the machine. small(4) = 2^4 = 16 nodes; defaults
    //    follow Table 1 of the paper (caches, NoC, DRAM, power).
    harness::SystemConfig sys = harness::SystemConfig::small(4);
    sys.seed = 2026;

    // 2. Describe the application: two barriers per iteration, with
    //    per-thread compute skew (the imbalance the thrifty barrier
    //    converts into sleep time).
    workloads::AppProfile app;
    app.name = "quickstart";
    workloads::PhaseSpec p;
    p.pc = 0x1000;
    p.meanCompute = 600 * kMicrosecond;
    p.imbalanceCv = 0.20; // heavily imbalanced
    app.loop.push_back(p);
    p.pc = 0x1001;
    p.meanCompute = 400 * kMicrosecond;
    app.loop.push_back(p);
    app.iterations = 12;

    // 3. Run it under both barrier implementations.
    const auto base =
        harness::runExperiment(sys, app, harness::ConfigKind::Baseline);
    const auto thrifty =
        harness::runExperiment(sys, app, harness::ConfigKind::Thrifty);

    // 4. Compare.
    std::printf("threads            : %u\n", base.threads);
    std::printf("barrier instances  : %llu\n",
                static_cast<unsigned long long>(base.sync.instances));
    std::printf("barrier imbalance  : %.1f%%\n",
                100.0 * base.imbalance());
    std::printf("\n%-22s %12s %12s\n", "", "Baseline", "Thrifty");
    std::printf("%-22s %10.3f ms %10.3f ms\n", "execution time",
                ticksToSeconds(base.execTime) * 1e3,
                ticksToSeconds(thrifty.execTime) * 1e3);
    std::printf("%-22s %11.2f J %11.2f J\n", "CPU energy",
                base.totalEnergy(), thrifty.totalEnergy());
    std::printf("%-22s %12s %11llu\n", "sleep episodes", "0",
                static_cast<unsigned long long>(thrifty.sync.sleeps));
    std::printf("\nthrifty barrier: %.1f%% energy saving at %.2f%% "
                "slowdown\n",
                100.0 * (1.0 - thrifty.totalEnergy() /
                                   base.totalEnergy()),
                100.0 * (static_cast<double>(thrifty.execTime) /
                             static_cast<double>(base.execTime) -
                         1.0));
    return 0;
}
