/**
 * @file
 * A guided tour of the prediction machinery — the paper's primary
 * contribution (Section 3.2): watch the PC-indexed last-value BIT
 * predictor warm up, the per-thread BRTS chains advance without a
 * global clock, the sleep() call pick states from the prediction, and
 * the overprediction cutoff disable a thread after the interval
 * pattern crashes.
 */

#include <cstdio>
#include <functional>

#include "harness/machine.hh"
#include "thrifty/thrifty_barrier.hh"

namespace {

using namespace tb;

const char*
yesno(bool b)
{
    return b ? "yes" : "no";
}

} // namespace

int
main()
{
    harness::Machine m(harness::SystemConfig::small(2)); // 4 threads
    thrifty::SyncStats stats;
    thrifty::ThriftyRuntime rt(4, thrifty::ThriftyConfig::thrifty(),
                               stats);
    thrifty::ThriftyBarrier barrier(m.eventQueue(), 0xB00, rt,
                                    m.memory(), "tour");

    // Thread 0 is the straggler; the interval crashes at instance 5.
    auto delay = [](ThreadId tid, unsigned inst) -> Tick {
        const Tick base = inst < 5 ? Tick{2 * kMillisecond}
                                   : Tick{120 * kMicrosecond};
        return tid == 0 ? base + base / 8 : base;
    };

    const unsigned instances = 8;
    std::function<void(ThreadId, unsigned)> round = [&](ThreadId tid,
                                                        unsigned inst) {
        if (inst >= instances)
            return;
        m.thread(tid).compute(delay(tid, inst), [&, tid, inst]() {
            barrier.arrive(m.thread(tid), [&, tid, inst]() {
                if (tid == 1) {
                    // Narrate from thread 1's perspective.
                    const auto pred =
                        rt.predictor().stored(barrier.pc());
                    const std::string table =
                        pred ? std::to_string(*pred / kMicrosecond) +
                                   "us"
                             : std::string("(empty)");
                    std::printf(
                        "instance %u done @%8.2fms | BIT table: %8s | "
                        "BRTS(t1) %8.2fms | slept so far: %llu | "
                        "t1 cut off: %s\n",
                        inst,
                        static_cast<double>(m.eventQueue().now()) /
                            kMillisecond,
                        table.c_str(),
                        static_cast<double>(rt.brts(1)) / kMillisecond,
                        static_cast<unsigned long long>(stats.sleeps),
                        yesno(rt.predictor().disabled(barrier.pc(),
                                                      1)));
                }
                round(tid, inst + 1);
            });
        });
    };
    std::printf("4 threads; thread 0 arrives last. Intervals: ~2ms "
                "for instances 0-4,\nthen crashing to ~120us "
                "(models an Ocean-style swing).\n\n");
    for (ThreadId t = 0; t < 4; ++t)
        round(t, 0);
    m.run();

    std::printf("\nWhat happened:\n"
                " - instance 0: BIT table empty -> everyone spins "
                "(warm-up, Section 3.2.1);\n"
                " - instances 1-4: last-value prediction ~2ms -> "
                "stall ~1.75ms fits Sleep3's\n"
                "   70us round trip -> early threads sleep deep;\n"
                " - instance 5: the interval crashed but the table "
                "still says 2ms -> threads\n"
                "   oversleep, the external wake-up rescues them "
                "~35us late, and the 10%%\n"
                "   cutoff (35us > 10%% of 120us) disables "
                "prediction for them (3.3.3);\n"
                " - instances 6-7: cut-off threads spin "
                "conventionally.\n");
    std::printf("\nFinal: %llu sleeps, %llu spins, %llu cutoffs over "
                "%llu instances.\n",
                static_cast<unsigned long long>(stats.sleeps),
                static_cast<unsigned long long>(stats.spins),
                static_cast<unsigned long long>(stats.cutoffs),
                static_cast<unsigned long long>(stats.instances));
    return 0;
}
