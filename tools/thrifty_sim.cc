/**
 * @file
 * Command-line front end: run one (application, configuration) pair
 * on the simulated machine with every mechanism knob exposed.
 *
 *   thrifty_sim --app Volrend --config T
 *   thrifty_sim --app Ocean --config T --cutoff -1 --json
 *   thrifty_sim --app FMM --config B --dim 4 --seed 7 --compare
 *   thrifty_sim --list-apps
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "fault/fault_spec.hh"
#include "harness/campaign_journal.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "obs/stat_writers.hh"
#include "obs/trace.hh"
#include "sim/logging.hh"
#include "workloads/app_profile.hh"

using namespace tb;

namespace {

void
usage(const char* argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "  --app NAME         application profile (see --list-apps); "
        "default Volrend\n"
        "  --config C         B|H|O|T|I or Baseline|Thrifty-Halt|"
        "Oracle-Halt|Thrifty|Ideal\n"
        "                     (default T)\n"
        "  --dim N            hypercube dimension, 2^N nodes "
        "(default 6 = 64 nodes)\n"
        "  --seed S           workload seed (default 1)\n"
        "  --wakeup P         external|internal|hybrid (default "
        "hybrid)\n"
        "  --predictor K      last-value|moving-average (default "
        "last-value)\n"
        "  --cutoff F         overprediction threshold as fraction "
        "of BIT;\n"
        "                     negative disables (default 0.10)\n"
        "  --filter F         underprediction filter factor; <=0 "
        "disables (default 10)\n"
        "  --states S         halt|halt2|all — available sleep "
        "states (default all)\n"
        "  --three-hop        DASH-style direct owner-to-requester "
        "forwarding\n"
        "  --sim-threads N    PDES worker threads driving the "
        "simulation\n"
        "                     (results byte-identical at any N; "
        "default 1 = serial)\n"
        "  --sim-partitions P cluster partitions of the machine "
        "(power of two\n"
        "                     dividing the node count; selects the "
        "simulation plan;\n"
        "                     default: nodes/8 for 16+ nodes, else "
        "1)\n"
        "  --faults SPEC      deterministic fault injection, e.g.\n"
        "                     seed=3,drop-wake=0.5,timer-drift=0.4 "
        "(see docs/ROBUSTNESS.md)\n"
        "  --hardening        force the graceful-degradation guard "
        "rails on\n"
        "  --liveness-budget MS\n"
        "                     checker budget for barrier release and "
        "sleep episodes;\n"
        "                     0 disables (default 200 when --faults "
        "is given)\n"
        "  --check            arm the protocol invariant checker "
        "(see docs/CHECKING.md)\n"
        "  --stats            dump per-component statistics after the "
        "run\n"
        "  --stats-json FILE  write the run's statistics (result, "
        "machine stats,\n"
        "                     per-episode prediction ledger) as JSON "
        "to FILE\n"
        "  --trace FILE[:CATS]\n"
        "                     write a Chrome trace_event JSON file "
        "(load in Perfetto);\n"
        "                     CATS is a comma list of sim,mem,noc,"
        "thrifty (default all)\n"
        "  --compare          also run Baseline and print normalized "
        "results\n"
        "  --json             machine-readable output\n"
        "  --list-apps        list application profiles and exit\n"
        "  --help             this text\n",
        argv0);
}

/** Strict numeric parsers: the whole operand must be one number in
 *  range, otherwise the run aborts with a usage hint — `--dim abc`
 *  must not silently become 0. */
std::uint64_t
parseUnsignedArg(const char* opt, const char* text)
{
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' || errno == ERANGE ||
        std::strchr(text, '-') != nullptr) {
        fatal("option ", opt, ": '", text,
              "' is not a non-negative integer (try --help)");
    }
    return v;
}

double
parseDoubleArg(const char* opt, const char* text)
{
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE) {
        fatal("option ", opt, ": '", text,
              "' is not a number (try --help)");
    }
    return v;
}

harness::ConfigKind
parseConfig(const std::string& s)
{
    if (s == "B" || s == "Baseline")
        return harness::ConfigKind::Baseline;
    if (s == "H" || s == "Thrifty-Halt")
        return harness::ConfigKind::ThriftyHalt;
    if (s == "O" || s == "Oracle-Halt")
        return harness::ConfigKind::OracleHalt;
    if (s == "T" || s == "Thrifty")
        return harness::ConfigKind::Thrifty;
    if (s == "I" || s == "Ideal")
        return harness::ConfigKind::Ideal;
    fatal("unknown configuration '", s, "'");
}

} // namespace

int
main(int argc, char** argv)
{
    std::string app_name = "Volrend";
    std::string config = "T";
    unsigned dim = 6;
    std::uint64_t seed = 1;
    unsigned sim_threads = 1;
    unsigned sim_partitions = 0;
    bool three_hop = false;
    bool check = false;
    bool dump_stats = false;
    std::string stats_json_path;
    std::string trace_path;
    unsigned trace_mask = obs::kAllTraceCategories;
    bool json = false;
    bool compare = false;
    bool hardening = false;
    fault::FaultSpec faults;
    bool have_faults = false;
    std::uint64_t liveness_ms = 0;
    bool have_liveness = false;

    thrifty::ThriftyConfig custom = thrifty::ThriftyConfig::thrifty();
    bool customized = false;

    auto need = [&](int& i) -> const char* {
        if (i + 1 >= argc)
            fatal("option ", argv[i], " needs a value (try --help)");
        const char* v = argv[++i];
        if (v[0] == '-' && v[1] == '-')
            fatal("option ", argv[i - 1], " needs a value but got '",
                  v, "' (try --help)");
        return v;
    };

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--help" || a == "-h") {
                usage(argv[0]);
                return 0;
            } else if (a == "--list-apps") {
                for (const auto& p : tb::workloads::paperApps()) {
                    std::printf("%-10s paper imbalance %5.2f%%, %zu "
                                "barriers, %u iterations\n",
                                p.name.c_str(),
                                100.0 * p.paperImbalance,
                                p.prologue.size() + p.loop.size(),
                                p.iterations);
                }
                return 0;
            } else if (a == "--app") {
                app_name = need(i);
            } else if (a == "--config") {
                config = need(i);
            } else if (a == "--dim") {
                dim = static_cast<unsigned>(
                    parseUnsignedArg("--dim", need(i)));
                if (dim < 1 || dim > 6)
                    fatal("option --dim: ", dim,
                          " out of range [1, 6] (2..64 nodes)");
            } else if (a == "--seed") {
                seed = parseUnsignedArg("--seed", need(i));
            } else if (a == "--sim-threads") {
                sim_threads = static_cast<unsigned>(
                    parseUnsignedArg("--sim-threads", need(i)));
                if (sim_threads == 0)
                    fatal("option --sim-threads: must be >= 1");
            } else if (a == "--sim-partitions") {
                sim_partitions = static_cast<unsigned>(
                    parseUnsignedArg("--sim-partitions", need(i)));
                if (sim_partitions == 0)
                    fatal("option --sim-partitions: must be >= 1");
            } else if (a == "--wakeup") {
                const std::string v = need(i);
                customized = true;
                if (v == "external")
                    custom.wakeup = thrifty::WakeupPolicy::External;
                else if (v == "internal")
                    custom.wakeup = thrifty::WakeupPolicy::Internal;
                else if (v == "hybrid")
                    custom.wakeup = thrifty::WakeupPolicy::Hybrid;
                else
                    fatal("unknown wakeup policy '", v, "'");
            } else if (a == "--predictor") {
                custom.predictorKind = need(i);
                customized = true;
            } else if (a == "--cutoff") {
                custom.overpredictionThreshold =
                    parseDoubleArg("--cutoff", need(i));
                customized = true;
            } else if (a == "--filter") {
                custom.underpredictionFilter =
                    parseDoubleArg("--filter", need(i));
                customized = true;
            } else if (a == "--states") {
                const std::string v = need(i);
                customized = true;
                if (v == "halt")
                    custom.states = power::SleepStateTable::haltOnly();
                else if (v == "halt2")
                    custom.states =
                        power::SleepStateTable::haltPlusSleep2();
                else if (v == "all")
                    custom.states =
                        power::SleepStateTable::paperDefault();
                else
                    fatal("unknown state set '", v, "'");
            } else if (a == "--three-hop") {
                three_hop = true;
            } else if (a == "--faults") {
                faults = fault::FaultSpec::parse(need(i));
                have_faults = true;
            } else if (a == "--hardening") {
                hardening = true;
            } else if (a == "--liveness-budget") {
                liveness_ms =
                    parseUnsignedArg("--liveness-budget", need(i));
                have_liveness = true;
            } else if (a == "--check") {
                check = true;
            } else if (a == "--stats") {
                dump_stats = true;
            } else if (a == "--stats-json") {
                stats_json_path = need(i);
            } else if (a == "--trace") {
                const std::string spec = need(i);
                const std::size_t colon = spec.find(':');
                trace_path = spec.substr(0, colon);
                if (trace_path.empty())
                    fatal("option --trace needs a file name "
                          "(try --help)");
                if (colon != std::string::npos &&
                    !obs::parseCategories(spec.substr(colon + 1),
                                          &trace_mask)) {
                    fatal("option --trace: bad category list '",
                          spec.substr(colon + 1),
                          "' (known: sim,mem,noc,thrifty,all)");
                }
            } else if (a == "--json") {
                json = true;
            } else if (a == "--compare") {
                compare = true;
            } else {
                usage(argv[0]);
                fatal("unknown option '", a, "'");
            }
        }

        harness::SystemConfig sys = harness::SystemConfig::small(dim);
        sys.seed = seed;
        sys.memory.threeHopForwarding = three_hop;
        const workloads::AppProfile app =
            workloads::appByName(app_name);
        const harness::ConfigKind kind = parseConfig(config);

        harness::RunOptions opt;
        opt.check = check;
        opt.simThreads = sim_threads;
        opt.simPartitions = sim_partitions;

        // Statistics flow through the visitor seam: --stats renders
        // the text report on stderr, --stats-json buffers a machine
        // sub-document for the JSON file; both at once tee.
        obs::TextStatWriter text_stats(std::cerr);
        std::ostringstream machine_json;
        obs::JsonWriter machine_writer(machine_json);
        std::unique_ptr<obs::JsonStatWriter> json_stats;
        std::unique_ptr<obs::TeeStatVisitor> tee;
        if (!stats_json_path.empty()) {
            machine_writer.beginObject();
            json_stats =
                std::make_unique<obs::JsonStatWriter>(machine_writer);
            opt.episodeLedger = true;
        }
        if (dump_stats && json_stats) {
            tee = std::make_unique<obs::TeeStatVisitor>(
                std::vector<stats::StatVisitor*>{&text_stats,
                                                 json_stats.get()});
            opt.statsVisitor = tee.get();
        } else if (dump_stats) {
            opt.statsVisitor = &text_stats;
        } else if (json_stats) {
            opt.statsVisitor = json_stats.get();
        }

        obs::TraceSink trace_sink(trace_mask, 0);
        if (!trace_path.empty())
            opt.traceSink = &trace_sink;
        if (hardening) {
            custom.hardening.enabled = true;
            customized = true;
        }
        if (have_faults) {
            opt.faults = &faults;
            // Survive the injected faults: a customized config gets
            // its guard rails switched on here; otherwise
            // runExperiment hardens the chosen preset itself.
            custom.hardening.enabled = true;
            if (!have_liveness)
                liveness_ms = 200;
        }
        opt.livenessBudget = liveness_ms * kMillisecond;
        if (customized && kind != harness::ConfigKind::Baseline) {
            // Start from the preset of the chosen configuration, then
            // apply only the flags the user actually set: simplest is
            // to use the custom config outright for Thrifty-style
            // kinds.
            opt.customConfig = &custom;
        }

        if (!json) {
            harness::report::printArchitecture(std::cout, sys);
            std::cout << "running " << app.name << " under "
                      << harness::configName(kind) << " (seed " << seed
                      << ") ...\n";
        }
        const auto r = harness::runExperiment(sys, app, kind, opt);

        if (!stats_json_path.empty()) {
            machine_writer.endObject();
            std::ostringstream doc;
            obs::JsonWriter w(doc);
            w.beginObject();
            harness::report::writeResultJson(w, r);
            w.key("machine").raw(machine_json.str());
            w.key("episodes").beginArray();
            for (const auto& ep : r.sync.episodes)
                harness::report::writeEpisodeJson(w, ep);
            w.endArray();
            w.endObject();
            harness::writeFileAtomic(stats_json_path,
                                     doc.str() + "\n");
        }
        if (!trace_path.empty()) {
            std::vector<obs::TraceChunk> chunks(1);
            chunks[0].pid = trace_sink.pid();
            chunks[0].label =
                app.name + "/" + harness::configName(kind);
            chunks[0].events = trace_sink.events();
            chunks[0].dropped = trace_sink.dropped();
            std::ostringstream doc;
            obs::writeChromeTrace(doc, chunks);
            harness::writeFileAtomic(trace_path, doc.str());
        }

        if (compare && kind != harness::ConfigKind::Baseline) {
            const auto base = harness::runExperiment(
                sys, app, harness::ConfigKind::Baseline);
            if (json) {
                std::cout << "[\n";
                harness::report::printJson(std::cout, base);
                std::cout << ",\n";
                harness::report::printJson(std::cout, r);
                std::cout << "]\n";
            } else {
                std::vector<harness::ExperimentResult> group{base, r};
                harness::report::printBreakdownGroup(std::cout, group,
                                                     true);
                harness::report::printBreakdownGroup(std::cout, group,
                                                     false);
            }
            return 0;
        }

        if (json) {
            harness::report::printJson(std::cout, r);
        } else {
            std::printf("exec time     : %.3f ms\n",
                        ticksToSeconds(r.execTime) * 1e3);
            std::printf("imbalance     : %.2f%%\n",
                        100.0 * r.imbalance());
            std::printf("total energy  : %.3f J\n", r.totalEnergy());
            for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
                std::printf("  %-10s  : %8.3f J  %10.3f ms\n",
                            power::bucketName(
                                static_cast<power::Bucket>(i)),
                            r.energy[i],
                            ticksToSeconds(r.time[i]) * 1e3);
            }
            std::printf("instances     : %llu  (arrivals %llu)\n",
                        static_cast<unsigned long long>(
                            r.sync.instances),
                        static_cast<unsigned long long>(
                            r.sync.arrivals));
            std::printf("sleeps/spins  : %llu / %llu  (cutoffs %llu, "
                        "filtered %llu)\n",
                        static_cast<unsigned long long>(r.sync.sleeps),
                        static_cast<unsigned long long>(r.sync.spins),
                        static_cast<unsigned long long>(
                            r.sync.cutoffs),
                        static_cast<unsigned long long>(
                            r.sync.filteredUpdates));
            harness::report::printFaultSummary(std::cout, r);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
