#include "tblint/rules.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "tblint/lexer.hh"

namespace tblint {

namespace {

// ----------------------------------------------------------------------
// Shared matcher plumbing
// ----------------------------------------------------------------------

/** Everything a rule sees about one file. */
struct FileCtx
{
    std::string path; ///< normalized to forward slashes
    const std::vector<Token>& toks;
    const std::vector<Token>& companion;
    std::set<std::string> unorderedNames; ///< self + companion decls
};

bool
isIdent(const std::vector<Token>& t, std::size_t i, const char* s)
{
    return i < t.size() && t[i].kind == TokKind::Ident &&
           t[i].text == s;
}

bool
isPunct(const std::vector<Token>& t, std::size_t i, const char* s)
{
    return i < t.size() && t[i].kind == TokKind::Punct &&
           t[i].text == s;
}

bool
pathEndsWith(const std::string& path, const std::string& tail)
{
    return path.size() >= tail.size() &&
           path.compare(path.size() - tail.size(), tail.size(),
                        tail) == 0;
}

/** True when @p path lies under directory @p dir ("src/sim"). */
bool
pathUnder(const std::string& path, const std::string& dir)
{
    const std::string needle = dir + "/";
    if (path.compare(0, needle.size(), needle) == 0)
        return true;
    return path.find("/" + needle) != std::string::npos;
}

void
emit(std::vector<Finding>* out, const FileCtx& ctx, const char* rule,
     int line, std::string message, std::string hint)
{
    out->push_back(Finding{rule, ctx.path, line, std::move(message),
                           std::move(hint)});
}

/**
 * Skip a balanced <...> starting at the '<' at @p i. Returns the index
 * just past the matching '>', or npos when the angles never balance
 * (e.g. a stray operator<) — callers drop the match.
 */
std::size_t
skipAngles(const std::vector<Token>& t, std::size_t i)
{
    if (!isPunct(t, i, "<"))
        return std::string::npos;
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (isPunct(t, i, "<"))
            ++depth;
        else if (isPunct(t, i, ">") && --depth == 0)
            return i + 1;
        else if (isPunct(t, i, ";"))
            return std::string::npos; // statement ended: not a template
    }
    return std::string::npos;
}

/** Skip a balanced [...] starting at @p i; @p i itself if no '['. */
std::size_t
skipBrackets(const std::vector<Token>& t, std::size_t i)
{
    if (!isPunct(t, i, "["))
        return i;
    int depth = 0;
    for (; i < t.size(); ++i) {
        if (isPunct(t, i, "["))
            ++depth;
        else if (isPunct(t, i, "]") && --depth == 0)
            return i + 1;
    }
    return i;
}

bool
isUnorderedTypeName(const std::string& s)
{
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
}

/**
 * Variable names declared in @p t with a std::unordered_* type,
 * either directly (`std::unordered_map<K, V> name`) or through a
 * single-level `using Alias = std::unordered_map<...>` alias.
 */
void
collectUnorderedNames(const std::vector<Token>& t,
                      std::set<std::string>* names)
{
    // Pass 1: type aliases of unordered containers.
    std::set<std::string> aliases;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (!isIdent(t, i, "using") || t[i + 1].kind != TokKind::Ident ||
            !isPunct(t, i + 2, "="))
            continue;
        for (std::size_t j = i + 3;
             j < t.size() && !isPunct(t, j, ";"); ++j) {
            if (t[j].kind == TokKind::Ident &&
                isUnorderedTypeName(t[j].text)) {
                aliases.insert(t[i + 1].text);
                break;
            }
        }
    }

    // Pass 2: declarations.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        std::size_t after = std::string::npos;
        if (isUnorderedTypeName(t[i].text)) {
            after = skipAngles(t, i + 1);
        } else if (aliases.count(t[i].text)) {
            // `Alias name;` — but not the alias definition itself.
            if (i >= 2 && isIdent(t, i - 2, "using"))
                continue;
            after = i + 1;
        }
        if (after == std::string::npos)
            continue;
        // `>::iterator` and friends are not declarations.
        if (isPunct(t, after, "::"))
            continue;
        while (isPunct(t, after, "&") || isPunct(t, after, "*") ||
               isIdent(t, after, "const"))
            ++after;
        if (after < t.size() && t[after].kind == TokKind::Ident &&
            !isPunct(t, after + 1, "("))
            names->insert(t[after].text);
    }
}

// ----------------------------------------------------------------------
// TBL001 — unordered-container iteration
// ----------------------------------------------------------------------

void
ruleUnorderedIteration(const FileCtx& ctx, std::vector<Finding>* out)
{
    const auto& t = ctx.toks;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!isIdent(t, i, "for") || !isPunct(t, i + 1, "("))
            continue;
        // Find the range-for ':' at paren depth 1.
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (isPunct(t, j, "("))
                ++depth;
            else if (isPunct(t, j, ")")) {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (isPunct(t, j, ":") && depth == 1 && !colon)
                colon = j;
        }
        if (!colon || !close)
            continue;
        // Range expression: accept `name`, `this->name`, `a.b.name`;
        // anything with a call in it is skipped, not guessed at.
        std::string name;
        bool simple = true;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (t[j].kind == TokKind::Ident)
                name = t[j].text;
            else if (!isPunct(t, j, ".") && !isPunct(t, j, "->"))
                simple = false;
        }
        if (!simple || name.empty() || !ctx.unorderedNames.count(name))
            continue;
        emit(out, ctx, "TBL001", t[i].line,
             "iterating unordered container '" + name +
                 "' — traversal order is unspecified and must not "
                 "reach stats/serde/JSON output",
             "copy the keys into a std::vector, std::sort them and "
             "iterate that (or store in a std::map); if every "
             "consumer is order-insensitive, suppress with "
             "tblint-allow(TBL001) and say why");
    }
}

// ----------------------------------------------------------------------
// TBL002 — wall clock / ambient entropy
// ----------------------------------------------------------------------

bool
isBannedClockType(const std::string& s)
{
    return s == "system_clock" || s == "steady_clock" ||
           s == "high_resolution_clock" || s == "random_device" ||
           s == "mt19937" || s == "mt19937_64" ||
           s == "default_random_engine" || s == "minstd_rand" ||
           s == "minstd_rand0";
}

bool
isBannedClockCall(const std::string& s)
{
    return s == "time" || s == "clock" || s == "rand" ||
           s == "srand" || s == "gettimeofday" ||
           s == "clock_gettime" || s == "timespec_get" ||
           s == "localtime" || s == "gmtime" || s == "mktime" ||
           // Blocking sleeps are wall-clock dependencies too: a
           // daemon/worker that sleeps hides latency from the lease
           // and heartbeat machinery. Wait on poll() timeouts
           // (harness::pollOne) so waits are interruptible and
           // visibly bounded.
           s == "sleep" || s == "usleep" || s == "nanosleep" ||
           s == "alarm" || s == "sleep_for" || s == "sleep_until";
}

void
ruleWallClock(const FileCtx& ctx, std::vector<Finding>* out)
{
    // The one sanctioned entropy seam: every simulation random stream.
    if (pathEndsWith(ctx.path, "sim/random.hh"))
        return;
    const auto& t = ctx.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokKind::Ident)
            continue;
        const bool member_qualified =
            i > 0 && (isPunct(t, i - 1, ".") || isPunct(t, i - 1, "->"));
        if (member_qualified)
            continue; // x.time(...) is some model's method, not libc
        const std::string& s = t[i].text;
        if (isBannedClockType(s)) {
            emit(out, ctx, "TBL002", t[i].line,
                 "'" + s +
                     "' is wall-clock/ambient entropy — simulation "
                     "behaviour must depend only on (config, seed)",
                 "derive times from Tick and randomness from "
                 "tb::Random(seed); for true wall-clock sites "
                 "(deadlines, bench timing) add "
                 "tblint-allow(TBL002) with the reason");
            continue;
        }
        if (!isBannedClockCall(s) || !isPunct(t, i + 1, "("))
            continue;
        // `Tick time(Bucket b)` declares a method named time — a
        // preceding identifier is a return type, not a call site,
        // unless it is a statement keyword.
        if (i > 0 && t[i - 1].kind == TokKind::Ident &&
            t[i - 1].text != "return" && t[i - 1].text != "else" &&
            t[i - 1].text != "do" && t[i - 1].text != "case")
            continue;
        if (i > 0 && isPunct(t, i - 1, "::")) {
            // std::time / ::time / this_thread::sleep_for stay
            // banned; Foo::time is a method.
            if (i > 1 && t[i - 2].kind == TokKind::Ident &&
                t[i - 2].text != "std" &&
                t[i - 2].text != "this_thread")
                continue;
        }
        emit(out, ctx, "TBL002", t[i].line,
             "call to '" + s +
                 "()' injects wall-clock/global entropy — simulation "
                 "behaviour must depend only on (config, seed)",
             "use tb::Random(seed) / simulated Ticks instead; for "
             "true wall-clock sites add tblint-allow(TBL002) with "
             "the reason");
    }
}

// ----------------------------------------------------------------------
// TBL003 — pointer identity in output
// ----------------------------------------------------------------------

void
rulePointerIdentity(const FileCtx& ctx, std::vector<Finding>* out)
{
    const auto& t = ctx.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind == TokKind::Str &&
            // tblint-allow(TBL003): matcher must name the banned token
            t[i].text.find("%p") != std::string::npos) {
            emit(out, ctx, "TBL003", t[i].line,
                 // tblint-allow(TBL003): diagnostic names the specifier
                 "\"%p\" formats a pointer value — addresses differ "
                 "run to run (ASLR, allocator), so they must never "
                 "reach artifacts",
                 "print a stable identity instead: node id, slot "
                 "index, or a name");
            continue;
        }
        // std::hash<T*> — hashing addresses.
        if (isIdent(t, i, "hash") && i > 0 && isPunct(t, i - 1, "::") &&
            isPunct(t, i + 1, "<")) {
            const std::size_t end = skipAngles(t, i + 1);
            if (end != std::string::npos) {
                for (std::size_t j = i + 2; j + 1 < end; ++j) {
                    if (isPunct(t, j, "*")) {
                        emit(out, ctx, "TBL003", t[i].line,
                             "std::hash of a pointer type hashes the "
                             "address — hash a stable key (id, index, "
                             "name) instead",
                             "key the container by a stable identity "
                             "rather than object address");
                        break;
                    }
                }
            }
            continue;
        }
        // reinterpret_cast<[u]intptr_t>(ptr) — address laundering.
        if (isIdent(t, i, "reinterpret_cast") &&
            isPunct(t, i + 1, "<")) {
            const std::size_t end = skipAngles(t, i + 1);
            if (end == std::string::npos)
                continue;
            for (std::size_t j = i + 2; j + 1 < end; ++j) {
                if (isIdent(t, j, "uintptr_t") ||
                    isIdent(t, j, "intptr_t")) {
                    emit(out, ctx, "TBL003", t[i].line,
                         "reinterpret_cast of a pointer to an integer "
                         "bakes the address into a value — addresses "
                         "are not stable across runs",
                         "carry a stable id/index instead of the "
                         "pointer bits");
                    break;
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// TBL010 — EventHandle member never canceled
// ----------------------------------------------------------------------

/** True when tokens contain `name[...]?.cancel` / `name->cancel`. */
bool
hasCancelOf(const std::vector<Token>& t, const std::string& name)
{
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isIdent(t, i, name.c_str()))
            continue;
        std::size_t j = skipBrackets(t, i + 1);
        if ((isPunct(t, j, ".") || isPunct(t, j, "->")) &&
            isIdent(t, j + 1, "cancel"))
            return true;
    }
    return false;
}

void
ruleHandleNeverCanceled(const FileCtx& ctx, std::vector<Finding>* out)
{
    const auto& t = ctx.toks;
    // The queue's own header defines EventHandle; nothing to own there.
    if (pathEndsWith(ctx.path, "sim/event_queue.hh"))
        return;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        std::string name;
        int line = 0;
        if (isIdent(t, i, "EventHandle") &&
            t[i + 1].kind == TokKind::Ident &&
            isPunct(t, i + 2, ";")) {
            name = t[i + 1].text;
            line = t[i].line;
        } else if (isIdent(t, i, "vector") &&
                   isPunct(t, i + 1, "<") &&
                   isIdent(t, i + 2, "EventHandle") &&
                   isPunct(t, i + 3, ">") &&
                   i + 5 < t.size() &&
                   t[i + 4].kind == TokKind::Ident &&
                   isPunct(t, i + 5, ";")) {
            name = t[i + 4].text;
            line = t[i].line;
        } else {
            continue;
        }
        if (hasCancelOf(ctx.toks, name) ||
            hasCancelOf(ctx.companion, name))
            continue;
        emit(out, ctx, "TBL010", line,
             "EventHandle member '" + name +
                 "' is never canceled — a pending event can fire "
                 "after its owner is gone or its state was reset",
             "cancel the handle in the owner's teardown/reset path "
             "(see the PR 2 cancelation-leak fix); if the queue "
             "provably drains first, suppress with "
             "tblint-allow(TBL010) and say why");
    }
}

// ----------------------------------------------------------------------
// TBL011 — handle use after cancel
// ----------------------------------------------------------------------

void
ruleUseAfterCancel(const FileCtx& ctx, std::vector<Finding>* out)
{
    const auto& t = ctx.toks;
    std::map<std::string, int> canceled; // name -> cancel line
    int brace = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (isPunct(t, i, "{")) {
            ++brace;
            continue;
        }
        if (isPunct(t, i, "}")) {
            if (--brace <= 0)
                canceled.clear(); // out of any definition: new scope
            continue;
        }
        if (t[i].kind != TokKind::Ident)
            continue;
        const std::string& name = t[i].text;
        const std::size_t j = skipBrackets(t, i + 1);
        // Reassignment forgets the cancel (handle now refers to a new
        // event). Compound/comparison operators don't assign here —
        // the lexer keeps '==' as two '=' tokens, so require the next
        // token not be '=' as well.
        if (isPunct(t, j, "=") && !isPunct(t, j + 1, "=") &&
            !(i > 0 && (isPunct(t, i - 1, ".") ||
                        isPunct(t, i - 1, "->")))) {
            canceled.erase(name);
            continue;
        }
        if (!isPunct(t, j, ".") && !isPunct(t, j, "->"))
            continue;
        if (isIdent(t, j + 1, "cancel") && isPunct(t, j + 2, "(")) {
            canceled[name] = t[i].line;
            continue;
        }
        if ((isIdent(t, j + 1, "when") ||
             isIdent(t, j + 1, "scheduled")) &&
            isPunct(t, j + 2, "(")) {
            const auto it = canceled.find(name);
            if (it == canceled.end())
                continue;
            emit(out, ctx, "TBL011", t[j + 1].line,
                 "'" + name + "." + t[j + 1].text +
                     "()' after '" + name + ".cancel()' (line " +
                     std::to_string(it->second) +
                     ") — a canceled handle is a stale no-op "
                     "(kTickNever/false), this read cannot mean "
                     "anything",
                 "read when()/scheduled() before canceling, or "
                 "reschedule into the handle first");
        }
    }
}

// ----------------------------------------------------------------------
// TBL020 — sim-layer include discipline
// ----------------------------------------------------------------------

void
ruleSimLayering(const FileCtx& ctx, std::vector<Finding>* out)
{
    if (!pathUnder(ctx.path, "src/sim"))
        return;
    for (const Token& tok : ctx.toks) {
        if (tok.kind != TokKind::PP)
            continue;
        // Parse `#include "header"` (with or without space after #).
        std::istringstream is(tok.text);
        std::string first;
        is >> first;
        if (first == "#") {
            std::string second;
            is >> second;
            if (second != "include")
                continue;
        } else if (first != "#include") {
            continue;
        }
        std::string rest;
        std::getline(is, rest);
        const std::size_t open = rest.find('"');
        if (open == std::string::npos)
            continue;
        const std::size_t close = rest.find('"', open + 1);
        if (close == std::string::npos)
            continue;
        const std::string header =
            rest.substr(open + 1, close - open - 1);
        if (header.rfind("harness/", 0) == 0 ||
            header.rfind("obs/", 0) == 0) {
            emit(out, ctx, "TBL020", tok.line,
                 "src/sim includes \"" + header +
                     "\" — the simulation kernel must not depend on "
                     "the harness/observability layers above it",
                 "invert the dependency: expose a seam (observer, "
                 "callback, sink pointer) in sim and let the upper "
                 "layer attach to it");
        }
    }
}

// ----------------------------------------------------------------------
// TBL021 — trace emission outside a TB_TRACED guard
// ----------------------------------------------------------------------

void
ruleUnguardedTrace(const FileCtx& ctx, std::vector<Finding>* out)
{
    // The obs layer itself renders events; the seam rule applies to
    // the instrumented layers below/around it.
    if (pathUnder(ctx.path, "src/obs"))
        return;
    const auto& t = ctx.toks;
    bool mentions_tracing = false;
    for (const Token& tok : t) {
        if (tok.kind == TokKind::Ident &&
            (tok.text == "TB_TRACED" || tok.text == "TraceSink")) {
            mentions_tracing = true;
            break;
        }
    }
    if (!mentions_tracing)
        return;

    std::vector<int> guardDepths; // brace depths of TB_TRACED blocks
    bool armed = false;           // saw TB_TRACED, block not yet open
    int brace = 0, paren = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (isPunct(t, i, "(")) {
            ++paren;
        } else if (isPunct(t, i, ")")) {
            --paren;
        } else if (isPunct(t, i, "{")) {
            ++brace;
            if (armed) {
                guardDepths.push_back(brace);
                armed = false;
            }
        } else if (isPunct(t, i, "}")) {
            --brace;
            while (!guardDepths.empty() && guardDepths.back() > brace)
                guardDepths.pop_back();
        } else if (isPunct(t, i, ";")) {
            if (paren == 0)
                armed = false; // single-statement guard ended
        } else if (isIdent(t, i, "TB_TRACED")) {
            armed = true;
        } else if ((isIdent(t, i, "instant") ||
                    isIdent(t, i, "complete")) &&
                   i > 0 &&
                   (isPunct(t, i - 1, ".") ||
                    isPunct(t, i - 1, "->")) &&
                   isPunct(t, i + 1, "(")) {
            if (guardDepths.empty() && !armed) {
                emit(out, ctx, "TBL021", t[i].line,
                     "trace emission '" + t[i].text +
                         "()' outside a TB_TRACED(...) guard — the "
                         "seam will not compile out under "
                         "-DTB_TRACING=OFF",
                     "wrap the emission in `if (TB_TRACED(sink, "
                     "category)) { ... }`");
            }
        }
    }
}

// ----------------------------------------------------------------------
// TBL022 — cross-partition queue access outside the channel API
// ----------------------------------------------------------------------

void
ruleUnsafeQueueAccess(const FileCtx& ctx, std::vector<Finding>* out)
{
    // Partition::unsafeQueue() is the owner-thread escape hatch for
    // wiring model objects into their own partition; the PDES engine
    // itself (src/sim) is the only layer allowed to reach for it
    // freely. Anywhere else, a call site is one partition touching a
    // queue that may belong to another — a data race under threaded
    // runs and a determinism bug even without one, because it bypasses
    // the channel timestamps the LBTS computation trusts.
    if (pathUnder(ctx.path, "src/sim"))
        return;
    const auto& t = ctx.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isIdent(t, i, "unsafeQueue"))
            continue;
        if (i == 0 ||
            !(isPunct(t, i - 1, ".") || isPunct(t, i - 1, "->")))
            continue;
        if (!isPunct(t, i + 1, "("))
            continue;
        emit(out, ctx, "TBL022", t[i].line,
             "direct EventQueue access through 'unsafeQueue()' outside "
             "src/sim — cross-partition work must travel a channel so "
             "the conservative LBTS bound stays truthful",
             "use Partition::send()/sendCancelable() for remote "
             "effects; if this queue provably belongs to the calling "
             "partition, say so in a tblint-allow reason");
    }
}

// ----------------------------------------------------------------------
// TBL023 — raw POSIX I/O in src/svc
// ----------------------------------------------------------------------

void
ruleRawPosixIo(const FileCtx& ctx, std::vector<Finding>* out)
{
    // The service layer must route socket I/O through the harness
    // posix_io helpers (readFull/writeFull/pollMany/acceptOne): they
    // own the EINTR-as-retry policy, so a signal landing mid-syscall
    // — SIGCHLD from a forked point, a profiler, a debugger attach —
    // never turns into a spurious disconnect or a torn frame. A raw
    // ::read in src/svc is a reintroduced EINTR bug waiting for a
    // signal to happen.
    if (!pathUnder(ctx.path, "src/svc"))
        return;
    const auto& t = ctx.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!(isIdent(t, i, "read") || isIdent(t, i, "write") ||
              isIdent(t, i, "poll") || isIdent(t, i, "accept")))
            continue;
        // Only the global-namespace spelling `::read(` counts;
        // `foo::read(` is some namespaced API, `obj.read(` a method.
        // A keyword before the `::` (`return ::read(...)`) is not a
        // qualifier — the call is still global.
        if (i == 0 || !isPunct(t, i - 1, "::"))
            continue;
        if (i >= 2 && t[i - 2].kind == TokKind::Ident &&
            t[i - 2].text != "return" && t[i - 2].text != "throw")
            continue;
        if (!isPunct(t, i + 1, "("))
            continue;
        emit(out, ctx, "TBL023", t[i].line,
             "raw '::" + t[i].text +
                 "()' in src/svc — bypasses the harness posix_io "
                 "EINTR-as-retry policy, so a mid-syscall signal "
                 "becomes a spurious disconnect or torn frame",
             "use harness::readFull/writeFull/pollOne/pollMany/"
             "acceptOne; a deliberate raw call needs a tblint-allow "
             "reason");
    }
}

// ----------------------------------------------------------------------
// TBL024 — direct Network::send above the fabric
// ----------------------------------------------------------------------

/**
 * Names declared with type `Network` (value, reference or pointer) in
 * @p t — `noc::Network& net;`, a constructor parameter, a local. The
 * nested callback type `Network::Deliver fn` is not a network, so a
 * `::` straight after the type name disqualifies the match.
 */
void
collectNetworkNames(const std::vector<Token>& t,
                    std::set<std::string>* names)
{
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!isIdent(t, i, "Network"))
            continue;
        std::size_t after = i + 1;
        if (isPunct(t, after, "::"))
            continue;
        while (isPunct(t, after, "&") || isPunct(t, after, "*") ||
               isIdent(t, after, "const"))
            ++after;
        if (after < t.size() && t[after].kind == TokKind::Ident &&
            !isPunct(t, after + 1, "("))
            names->insert(t[after].text);
    }
}

void
ruleDirectNetworkSend(const FileCtx& ctx, std::vector<Finding>* out)
{
    // The protocol layers speak to the NoC only through mem::Fabric:
    // its wrappers attach the coherence observer, the byte accounting
    // and (on a partitioned machine) the cross-cluster channel hop
    // that keeps the conservative lookahead truthful. A raw
    // Network::send from src/mem or src/thrifty skips all three, so a
    // message can arrive unobserved, unbilled, and — worst — inside
    // another partition's past. The fabric itself carries the allows.
    if (!pathUnder(ctx.path, "src/mem") &&
        !pathUnder(ctx.path, "src/thrifty"))
        return;
    std::set<std::string> nets;
    collectNetworkNames(ctx.toks, &nets);
    collectNetworkNames(ctx.companion, &nets);
    const auto& t = ctx.toks;
    for (std::size_t i = 2; i < t.size(); ++i) {
        if (!isIdent(t, i, "send"))
            continue;
        const bool member_call =
            isPunct(t, i + 1, "(") &&
            (isPunct(t, i - 1, ".") || isPunct(t, i - 1, "->")) &&
            t[i - 2].kind == TokKind::Ident &&
            nets.count(t[i - 2].text) != 0;
        // The qualified spelling also covers member-pointer forms
        // (`&Network::send`), where no call paren follows.
        const bool qualified =
            isPunct(t, i - 1, "::") && isIdent(t, i - 2, "Network");
        if (!member_call && !qualified)
            continue;
        emit(out, ctx, "TBL024", t[i].line,
             "direct Network::send above the fabric — the protocol "
             "layers must not hand raw deliveries to the NoC",
             "route the message through mem::Fabric "
             "(toDirectory/toController/sendControl) or the per-hop "
             "API so observer, byte accounting and partition channels "
             "all see it");
    }
}

// ----------------------------------------------------------------------
// Driver + suppression pass
// ----------------------------------------------------------------------

std::string
normalizePath(std::string p)
{
    std::replace(p.begin(), p.end(), '\\', '/');
    // Collapse "./" prefixes so pathUnder matching behaves.
    while (p.rfind("./", 0) == 0)
        p.erase(0, 2);
    return p;
}

bool
isKnownRule(const std::string& id)
{
    for (const RuleInfo& r : ruleCatalog()) {
        if (id == r.id)
            return true;
    }
    return false;
}

/** TBL000: every allow must name known rules and carry a reason. */
void
ruleSuppressionHygiene(const FileCtx& ctx,
                       const std::vector<Allow>& allows,
                       std::vector<Finding>* out)
{
    for (const Allow& a : allows) {
        if (a.rules.empty()) {
            emit(out, ctx, "TBL000", a.line,
                 "tblint-allow names no rule — use "
                 "tblint-allow(TBLxxx): reason",
                 "name the rule ID(s) being suppressed");
            continue;
        }
        for (const std::string& id : a.rules) {
            if (!isKnownRule(id)) {
                emit(out, ctx, "TBL000", a.line,
                     "tblint-allow names unknown rule '" + id + "'",
                     "run `tblint --list-rules` for the catalog");
            }
        }
        if (a.reason.empty()) {
            emit(out, ctx, "TBL000", a.line,
                 "tblint-allow without a reason — a suppression is a "
                 "claim and must say why it holds",
                 "append `: reason` to the directive");
        }
    }
}

bool
isSuppressed(const Finding& f, const std::vector<Allow>& allows)
{
    if (f.rule == "TBL000")
        return false; // hygiene findings are not themselves allowable
    for (const Allow& a : allows) {
        if (a.reason.empty())
            continue; // malformed allows suppress nothing
        if (a.line != f.line && a.line != f.line - 1)
            continue;
        for (const std::string& id : a.rules) {
            if (id == f.rule)
                return true;
        }
    }
    return false;
}

} // namespace

const std::vector<RuleInfo>&
ruleCatalog()
{
    static const std::vector<RuleInfo> kRules = {
        {"TBL000", "suppression-hygiene",
         "tblint-allow must name known rules and carry a reason"},
        {"TBL001", "unordered-iteration",
         "no unordered_map/set iteration order reaching "
         "stats/serde/JSON — sort before emitting"},
        {"TBL002", "wall-clock",
         "no wall-clock/ambient entropy outside sim/random.hh; "
         "true wall-clock sites carry an inline allow"},
        {"TBL003", "pointer-identity",
         // tblint-allow(TBL003): catalog summary names the specifier
         "no pointer values in output: %p, std::hash<T*>, "
         "pointer-to-integer casts"},
        {"TBL010", "handle-never-canceled",
         "EventHandle members must be canceled on their owner's "
         "teardown path"},
        {"TBL011", "use-after-cancel",
         "no when()/scheduled() reads of a handle after cancel() "
         "without rescheduling"},
        {"TBL020", "sim-layering",
         "src/sim must not include src/harness or src/obs headers"},
        {"TBL021", "unguarded-trace",
         "TraceSink emission outside src/obs must sit under "
         "TB_TRACED() so -DTB_TRACING=OFF compiles it out"},
        {"TBL022", "pdes-channel-bypass",
         "no Partition::unsafeQueue() call sites outside src/sim — "
         "cross-partition effects must use the channel API"},
        {"TBL023", "raw-posix-io",
         "no raw ::read/::write/::poll/::accept in src/svc — socket "
         "I/O must use the harness posix_io EINTR-safe helpers"},
        {"TBL024", "raw-noc-send",
         "no direct Network::send from src/mem or src/thrifty — "
         "messages must travel mem::Fabric (or the hop API) so "
         "observer, accounting and partition channels see them"},
    };
    return kRules;
}

std::vector<Finding>
lintContent(const std::string& path, const std::string& content,
            const std::string& companion)
{
    const LexedFile self = lex(content);
    const LexedFile comp = lex(companion);

    FileCtx ctx{normalizePath(path), self.tokens, comp.tokens, {}};
    collectUnorderedNames(self.tokens, &ctx.unorderedNames);
    collectUnorderedNames(comp.tokens, &ctx.unorderedNames);

    std::vector<Finding> raw;
    ruleSuppressionHygiene(ctx, self.allows, &raw);
    ruleUnorderedIteration(ctx, &raw);
    ruleWallClock(ctx, &raw);
    rulePointerIdentity(ctx, &raw);
    ruleHandleNeverCanceled(ctx, &raw);
    ruleUseAfterCancel(ctx, &raw);
    ruleSimLayering(ctx, &raw);
    ruleUnguardedTrace(ctx, &raw);
    ruleUnsafeQueueAccess(ctx, &raw);
    ruleRawPosixIo(ctx, &raw);
    ruleDirectNetworkSend(ctx, &raw);

    std::vector<Finding> kept;
    for (Finding& f : raw) {
        if (!isSuppressed(f, self.allows))
            kept.push_back(std::move(f));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return kept;
}

namespace {

bool
readFile(const std::string& path, std::string* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** foo.cc <-> foo.hh (the repo's pairing convention). */
std::string
companionPath(const std::string& path)
{
    if (pathEndsWith(path, ".cc"))
        return path.substr(0, path.size() - 3) + ".hh";
    if (pathEndsWith(path, ".hh"))
        return path.substr(0, path.size() - 3) + ".cc";
    return "";
}

} // namespace

std::vector<Finding>
lintFile(const std::string& path)
{
    std::string content;
    if (!readFile(path, &content)) {
        return {Finding{"IO", path, 0, "cannot read file", ""}};
    }
    std::string companion;
    const std::string cp = companionPath(path);
    if (!cp.empty())
        readFile(cp, &companion); // absent companion is fine
    return lintContent(path, content, companion);
}

} // namespace tblint
