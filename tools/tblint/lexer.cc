#include "tblint/lexer.hh"

#include <cctype>

namespace tblint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Strip leading/trailing whitespace. */
std::string
trim(const std::string& s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/**
 * Scan comment text for suppression directives: the allow tag
 * immediately followed by a parenthesized comma-separated rule list,
 * then a colon and the reason. @p line is the line the comment starts
 * on; directives in multi-line block comments account for embedded
 * newlines.
 */
void
collectAllows(const std::string& comment, int line,
              std::vector<Allow>* out)
{
    static const std::string kTag = "tblint-allow";
    std::size_t at = 0;
    int cur = line;
    std::size_t scanned = 0;
    while ((at = comment.find(kTag, at)) != std::string::npos) {
        for (; scanned < at; ++scanned)
            cur += comment[scanned] == '\n';
        std::size_t p = at + kTag.size();
        at = p;
        if (p >= comment.size() || comment[p] != '(')
            continue;
        const std::size_t close = comment.find(')', ++p);
        if (close == std::string::npos)
            continue;
        Allow a;
        a.line = cur;
        std::string id;
        for (std::size_t i = p; i <= close; ++i) {
            const char c = comment[i];
            if (c == ',' || c == ')') {
                id = trim(id);
                if (!id.empty())
                    a.rules.push_back(id);
                id.clear();
            } else {
                id += c;
            }
        }
        std::size_t after = close + 1;
        if (after < comment.size() && comment[after] == ':') {
            std::size_t end = comment.find('\n', after);
            if (end == std::string::npos)
                end = comment.size();
            a.reason = trim(comment.substr(after + 1, end - after - 1));
        }
        out->push_back(std::move(a));
        at = close;
    }
}

} // namespace

LexedFile
lex(const std::string& content)
{
    LexedFile out;
    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    bool at_line_start = true; // only whitespace seen since newline

    const auto peek = [&](std::size_t k) -> char {
        return i + k < n ? content[i + k] : '\0';
    };

    while (i < n) {
        const char c = content[i];

        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            std::size_t end = content.find('\n', i);
            if (end == std::string::npos)
                end = n;
            collectAllows(content.substr(i, end - i), line,
                          &out.allows);
            i = end;
            continue;
        }

        // Block comment (may span lines).
        if (c == '/' && peek(1) == '*') {
            std::size_t end = content.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            const std::string body = content.substr(i, end - i);
            collectAllows(body, line, &out.allows);
            for (char b : body)
                line += b == '\n';
            i = end;
            continue;
        }

        // Preprocessor directive: '#' first on its line; fold
        // backslash continuations into one PP token.
        if (c == '#' && at_line_start) {
            const int start_line = line;
            std::string text;
            while (i < n) {
                const char d = content[i];
                if (d == '\n') {
                    if (!text.empty() && text.back() == '\\') {
                        text.pop_back();
                        ++line;
                        ++i;
                        continue;
                    }
                    break;
                }
                text += d;
                ++i;
            }
            out.tokens.push_back({TokKind::PP, text, start_line});
            continue;
        }
        at_line_start = false;

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"') {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && content[p] != '(' && delim.size() < 16)
                delim += content[p++];
            const std::string terminator = ")" + delim + "\"";
            std::size_t end = content.find(terminator, p);
            std::string body;
            if (end == std::string::npos) {
                end = n;
                body = content.substr(p < n ? p + 1 : n);
            } else {
                body = content.substr(p + 1, end - p - 1);
                end += terminator.size();
            }
            out.tokens.push_back({TokKind::Str, body, line});
            for (std::size_t k = i; k < end && k < n; ++k)
                line += content[k] == '\n';
            i = end;
            continue;
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::string body;
            std::size_t p = i + 1;
            while (p < n && content[p] != quote &&
                   content[p] != '\n') {
                if (content[p] == '\\' && p + 1 < n) {
                    body += content[p];
                    body += content[p + 1];
                    p += 2;
                } else {
                    body += content[p++];
                }
            }
            out.tokens.push_back({quote == '"' ? TokKind::Str
                                               : TokKind::Chr,
                                  body, line});
            i = p < n ? p + 1 : n;
            continue;
        }

        if (identStart(c)) {
            std::size_t p = i + 1;
            while (p < n && identChar(content[p]))
                ++p;
            out.tokens.push_back(
                {TokKind::Ident, content.substr(i, p - i), line});
            i = p;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            // pp-number: digits, letters, dots, and exponent signs.
            std::size_t p = i + 1;
            while (p < n &&
                   (identChar(content[p]) || content[p] == '.' ||
                    content[p] == '\'' ||
                    ((content[p] == '+' || content[p] == '-') &&
                     (content[p - 1] == 'e' || content[p - 1] == 'E' ||
                      content[p - 1] == 'p' || content[p - 1] == 'P'))))
                ++p;
            out.tokens.push_back(
                {TokKind::Number, content.substr(i, p - i), line});
            i = p;
            continue;
        }

        // Punctuation; only `::` and `->` combine.
        if (c == ':' && peek(1) == ':') {
            out.tokens.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && peek(1) == '>') {
            out.tokens.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

} // namespace tblint
