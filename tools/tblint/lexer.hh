/**
 * @file
 * Minimal C++ lexer for tblint (docs/CHECKING.md, "Static analysis").
 *
 * tblint's rules are lexical invariants — "no unordered iteration
 * feeding an emitter", "no wall-clock call outside the whitelist" —
 * so the tool does not need a real C++ front end. This lexer produces
 * just enough structure for the matchers in rules.cc:
 *
 *  - identifiers, numbers, string/char literals and punctuation as
 *    individual tokens carrying their source line;
 *  - a whole preprocessor logical line (continuations folded) as one
 *    token, so include-layering rules can match on the full directive;
 *  - comments stripped, except that suppression directives inside
 *    them — the allow tag, a parenthesized rule list, `: reason` —
 *    are collected per line for the suppression pass.
 *
 * Only `::` and `->` are combined into multi-character punctuation —
 * they are the two spellings the matchers must distinguish (qualified
 * names, member calls). Everything else, including `>>` inside nested
 * template argument lists, stays single-character, which is exactly
 * what the balanced-angle-bracket skipper in rules.cc wants.
 */

#ifndef TB_TOOLS_TBLINT_LEXER_HH_
#define TB_TOOLS_TBLINT_LEXER_HH_

#include <map>
#include <string>
#include <vector>

namespace tblint {

enum class TokKind
{
    Ident,  ///< identifier or keyword
    Number, ///< pp-number (value never interpreted)
    Str,    ///< string literal, text is the *body* (no quotes)
    Chr,    ///< character literal, text is the body
    Punct,  ///< punctuation; `::` and `->` are single tokens
    PP,     ///< one whole preprocessor logical line
};

struct Token
{
    TokKind kind;
    std::string text;
    int line; ///< 1-based line of the token's first character
};

/** One suppression directive lifted from a comment. */
struct Allow
{
    std::vector<std::string> rules; ///< rule IDs, e.g. {"TBL002"}
    std::string reason;             ///< text after the colon, trimmed
    int line;                       ///< line the directive sits on
};

/** Lexing result: token stream plus the suppression directives. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Allow> allows;
};

/**
 * Tokenize @p content. Never fails: unterminated literals and other
 * malformations degrade to best-effort tokens, which at worst costs a
 * rule a match — a linter must not crash on the code it polices.
 */
LexedFile lex(const std::string& content);

} // namespace tblint

#endif // TB_TOOLS_TBLINT_LEXER_HH_
