/**
 * @file
 * tblint rule engine: simulator-specific invariants enforced at lint
 * time (docs/CHECKING.md, "Static analysis").
 *
 * The load-bearing property of this repo is that simulation artifacts
 * are byte-identical across serial runs, `--jobs N` campaigns and
 * journal resume. CI enforces that dynamically by diffing artifacts;
 * these rules catch the bug classes that break it *before* they run:
 *
 *   TBL000  suppression hygiene: a tblint-allow directive must name
 *           known rule IDs and carry a non-empty reason.
 *   TBL001  determinism: range-for over a std::unordered_map/set —
 *           iteration order is unspecified, so anything it feeds
 *           (stats, serde, JSON) must use sorted emission instead.
 *   TBL002  determinism: wall-clock / ambient entropy (chrono clocks,
 *           time(), rand(), std::random_device, ...) anywhere but
 *           src/sim/random.hh. True wall-clock sites (supervisor
 *           deadlines, bench timing) carry an inline allow.
 *   TBL003  determinism: pointer identity reaching output — "%p" in a
 *           format string, std::hash of a pointer type, or a
 *           pointer-to-integer reinterpret_cast.
 *   TBL010  lifetime: a class declares an EventHandle member that is
 *           never canceled anywhere in the class's files — pending
 *           events can outlive their owner (the bug class PR 2 fixed
 *           by hand).
 *   TBL011  lifetime: calling .when()/.scheduled() on a handle after
 *           .cancel() without rescheduling it — post-cancel reads are
 *           deterministic no-ops (kTickNever/false) and almost always
 *           a logic bug.
 *   TBL020  layering: src/sim must not include src/harness or src/obs
 *           headers (the kernel stays below the tooling layers).
 *   TBL021  layering: TraceSink::instant/complete calls outside
 *           src/obs must sit under a TB_TRACED(...) guard, so
 *           -DTB_TRACING=OFF compiles every seam out.
 *   TBL022  layering: Partition::unsafeQueue() call sites outside
 *           src/sim — a partition reaching into a raw EventQueue
 *           bypasses the PDES channel timestamps that keep threaded
 *           runs race-free and bit-identical to serial; remote
 *           effects must use Partition::send().
 *   TBL023  robustness: raw ::read/::write/::poll/::accept in
 *           src/svc — socket I/O must use the harness posix_io
 *           helpers, which own the EINTR-as-retry policy.
 *   TBL024  layering: direct Network::send from src/mem or
 *           src/thrifty — protocol messages must travel mem::Fabric
 *           (or the per-hop API) so the coherence observer, byte
 *           accounting and cross-partition channels all see them;
 *           the fabric's own wrappers carry inline allows.
 *
 * Findings are suppressed by an inline comment directive — the allow
 * tag with the rule ID in parentheses, then a mandatory reason — on
 * the same line or the line directly above; `tblint --list-rules`
 * prints the exact syntax. All matching is lexical (see
 * lexer.hh): cheap, dependency-free, and easy to keep true-positive;
 * genuinely ambiguous constructs are skipped rather than guessed at.
 */

#ifndef TB_TOOLS_TBLINT_RULES_HH_
#define TB_TOOLS_TBLINT_RULES_HH_

#include <string>
#include <vector>

namespace tblint {

/** One diagnostic. */
struct Finding
{
    std::string rule;    ///< stable ID, e.g. "TBL001"
    std::string path;    ///< file as given to the linter
    int line = 0;        ///< 1-based
    std::string message; ///< what is wrong, with the offending name
    std::string hint;    ///< how to fix it (printed under --fix-hints)
};

/** Catalog entry for --list-rules and the docs table. */
struct RuleInfo
{
    const char* id;
    const char* name;
    const char* summary;
};

/** Every rule, in ID order. */
const std::vector<RuleInfo>& ruleCatalog();

/**
 * Lint @p content as file @p path. @p companion is the content of the
 * same-stem header/source next to it ("" when there is none): member
 * declarations live in the .hh while the cancel/iteration code lives
 * in the .cc, so TBL001 and TBL010 look across the pair.
 * Suppressions are already applied; the returned findings are real.
 */
std::vector<Finding> lintContent(const std::string& path,
                                 const std::string& content,
                                 const std::string& companion = "");

/**
 * Lint the file at @p path, resolving the .cc/.hh companion on disk.
 * I/O errors produce a single pseudo-finding with rule "IO".
 */
std::vector<Finding> lintFile(const std::string& path);

} // namespace tblint

#endif // TB_TOOLS_TBLINT_RULES_HH_
