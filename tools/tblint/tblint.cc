/**
 * @file
 * tblint CLI: the repo's determinism/concurrency/layering linter.
 *
 *   tblint [--fix-hints] [--list-rules] <file-or-dir>...
 *
 * Directories are walked recursively for *.cc / *.hh. Exit status:
 * 0 clean, 1 findings, 2 usage or I/O error — the same contract as
 * the campaign binaries, so CI and scripts/check_all.sh can gate on
 * it directly. See docs/CHECKING.md ("Static analysis") for the rule
 * catalog and the suppression syntax.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "tblint/rules.hh"

namespace {

namespace fs = std::filesystem;

[[noreturn]] void
usage(const char* argv0, int status)
{
    std::fprintf(
        status == 0 ? stdout : stderr,
        "usage: %s [--fix-hints] [--list-rules] <file-or-dir>...\n"
        "  --fix-hints   print a fix suggestion under each finding\n"
        "  --list-rules  print the rule catalog and exit\n"
        "Lints *.cc / *.hh for determinism, event-handle lifetime and\n"
        "layering invariants (docs/CHECKING.md, \"Static analysis\").\n"
        "Suppress a finding with  // tblint-allow(TBLxxx): reason\n"
        "on the same line or the line above.\n",
        argv0);
    std::exit(status);
}

bool
lintableFile(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

/** Expand files/directories into a sorted, deduplicated file list. */
std::vector<std::string>
collectFiles(const std::vector<std::string>& paths, bool* io_error)
{
    std::vector<std::string> files;
    for (const std::string& p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator
                     it(p, fs::directory_options::skip_permission_denied,
                        ec),
                 end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (it->is_regular_file(ec) && lintableFile(it->path()))
                    files.push_back(it->path().string());
            }
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            std::fprintf(stderr, "tblint: cannot access '%s'\n",
                         p.c_str());
            *io_error = true;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

} // namespace

int
main(int argc, char** argv)
{
    bool fix_hints = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--fix-hints") == 0) {
            fix_hints = true;
        } else if (std::strcmp(a, "--list-rules") == 0) {
            for (const tblint::RuleInfo& r : tblint::ruleCatalog())
                std::printf("%s  %-22s %s\n", r.id, r.name, r.summary);
            return 0;
        } else if (std::strcmp(a, "--help") == 0 ||
                   std::strcmp(a, "-h") == 0) {
            usage(argv[0], 0);
        } else if (a[0] == '-') {
            std::fprintf(stderr, "tblint: unknown option '%s'\n", a);
            usage(argv[0], 2);
        } else {
            paths.push_back(a);
        }
    }
    if (paths.empty())
        usage(argv[0], 2);

    bool io_error = false;
    const std::vector<std::string> files =
        collectFiles(paths, &io_error);

    std::size_t findings = 0;
    for (const std::string& file : files) {
        for (const tblint::Finding& f : tblint::lintFile(file)) {
            if (f.rule == "IO") {
                std::fprintf(stderr, "tblint: %s: %s\n",
                             f.path.c_str(), f.message.c_str());
                io_error = true;
                continue;
            }
            ++findings;
            std::printf("%s:%d: %s: %s\n", f.path.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
            if (fix_hints && !f.hint.empty())
                std::printf("    hint: %s\n", f.hint.c_str());
        }
    }

    if (io_error)
        return 2;
    if (findings) {
        std::fprintf(stderr, "tblint: %zu finding%s in %zu file%s\n",
                     findings, findings == 1 ? "" : "s", files.size(),
                     files.size() == 1 ? "" : "s");
        return 1;
    }
    std::fprintf(stderr, "tblint: clean (%zu files)\n", files.size());
    return 0;
}
