/**
 * @file
 * Unit tests for the set-associative cache array.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using mem::CacheArray;
using mem::CacheGeometry;
using mem::LineState;

CacheGeometry
tiny()
{
    // 4 sets x 2 ways x 64B lines.
    return CacheGeometry{512, 2, 64};
}

TEST(CacheArray, GeometryDerivesSets)
{
    CacheArray c(tiny());
    EXPECT_EQ(c.geometry().numSets(), 4u);
}

TEST(CacheArray, MissOnEmpty)
{
    CacheArray c(tiny());
    EXPECT_EQ(c.find(0x1000), nullptr);
    EXPECT_EQ(c.validCount(), 0u);
}

TEST(CacheArray, InsertThenHit)
{
    CacheArray c(tiny());
    auto victim = c.insert(0x1000, LineState::Shared);
    EXPECT_FALSE(victim.valid);
    CacheArray::Line* l = c.find(0x1000);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, LineState::Shared);
    EXPECT_EQ(c.validCount(), 1u);
}

TEST(CacheArray, LruEvictionWithinSet)
{
    CacheArray c(tiny());
    // Lines mapping to set 0: line addr multiples of 4*64=256.
    c.insert(0x0000, LineState::Shared);
    c.insert(0x0100, LineState::Modified);
    // Touch the first so the second becomes LRU.
    c.touch(*c.find(0x0000));
    auto victim = c.insert(0x0200, LineState::Exclusive);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 0x0100u);
    EXPECT_EQ(victim.state, LineState::Modified);
    EXPECT_NE(c.find(0x0000), nullptr);
    EXPECT_EQ(c.find(0x0100), nullptr);
    EXPECT_NE(c.find(0x0200), nullptr);
}

TEST(CacheArray, DifferentSetsDoNotConflict)
{
    CacheArray c(tiny());
    for (Addr a = 0; a < 8 * 64; a += 64)
        c.insert(a, LineState::Shared); // 2 per set across 4 sets
    EXPECT_EQ(c.validCount(), 8u);
}

TEST(CacheArray, InvalidateRemovesLine)
{
    CacheArray c(tiny());
    c.insert(0x40, LineState::Exclusive);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_EQ(c.find(0x40), nullptr);
    EXPECT_FALSE(c.invalidate(0x40));
}

TEST(CacheArray, InvalidWayReusedBeforeEviction)
{
    CacheArray c(tiny());
    c.insert(0x0000, LineState::Shared);
    c.insert(0x0100, LineState::Shared);
    c.invalidate(0x0000);
    auto victim = c.insert(0x0200, LineState::Shared);
    EXPECT_FALSE(victim.valid);
    EXPECT_NE(c.find(0x0100), nullptr);
}

TEST(CacheArray, ForEachValidVisitsAllValid)
{
    CacheArray c(tiny());
    c.insert(0x0000, LineState::Modified);
    c.insert(0x0040, LineState::Shared);
    c.insert(0x0080, LineState::Modified);
    unsigned dirty = 0, total = 0;
    c.forEachValid([&](CacheArray::Line& l) {
        ++total;
        if (l.state == LineState::Modified)
            ++dirty;
    });
    EXPECT_EQ(total, 3u);
    EXPECT_EQ(dirty, 2u);
}

TEST(CacheArray, DoubleInsertPanics)
{
    CacheArray c(tiny());
    c.insert(0x40, LineState::Shared);
    EXPECT_THROW(c.insert(0x40, LineState::Shared), PanicError);
}

TEST(CacheArray, InsertInvalidStatePanics)
{
    CacheArray c(tiny());
    EXPECT_THROW(c.insert(0x40, LineState::Invalid), PanicError);
}

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(CacheGeometry{512, 0, 64}), FatalError);
    EXPECT_THROW(CacheArray(CacheGeometry{512, 2, 48}), FatalError);
    EXPECT_THROW(CacheArray(CacheGeometry{500, 2, 64}), FatalError);
    // 3 sets: not a power of two (768 = 3*2*128... use lineBytes 128)
    EXPECT_THROW(CacheArray(CacheGeometry{768, 2, 128}), FatalError);
}

TEST(CacheArray, PaperGeometriesConstruct)
{
    CacheArray l1(CacheGeometry{16 * 1024, 2, 64});
    CacheArray l2(CacheGeometry{64 * 1024, 8, 64});
    EXPECT_EQ(l1.geometry().numSets(), 128u);
    EXPECT_EQ(l2.geometry().numSets(), 128u);
}

} // namespace
} // namespace tb
