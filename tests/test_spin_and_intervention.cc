/**
 * @file
 * Tests for the spinloop primitive and the intervention safety wake:
 * a non-snooping sleeper holding a *dirty* line must be woken to
 * service a forwarded request (the controller cannot read the gated
 * data array), and the requester must still observe the dirty value.
 */

#include <gtest/gtest.h>

#include <optional>

#include "cpu/cpu.hh"
#include "harness/machine.hh"
#include "thrifty/spin_wait.hh"

namespace tb {
namespace {

using harness::Machine;
using harness::SystemConfig;

TEST(SpinWait, ImmediatePassWhenFlagAlreadySet)
{
    Machine m(SystemConfig::small(1));
    const Addr flag = m.memory().addressMap().allocShared(4096);
    bool stored = false;
    m.memory().controller(1).store(flag, 5, [&]() { stored = true; });
    m.eventQueue().run();
    ASSERT_TRUE(stored);

    bool passed = false;
    thrifty::spinOnFlag(m.thread(0), flag, 5,
                        [&]() { passed = true; });
    m.run();
    EXPECT_TRUE(passed);
    EXPECT_EQ(m.cpu(0).state(), cpu::CpuState::Active);
}

TEST(SpinWait, WaitsForValueNotJustInvalidation)
{
    // The flag line is invalidated by a write of the *wrong* value
    // first; the spinner must keep spinning until the wanted value
    // arrives.
    Machine m(SystemConfig::small(1));
    const Addr flag = m.memory().addressMap().allocShared(4096);

    bool passed = false;
    Tick passed_at = 0;
    thrifty::spinOnFlag(m.thread(0), flag, 2, [&]() {
        passed = true;
        passed_at = m.eventQueue().now();
    });
    m.eventQueue().schedule(100 * kMicrosecond, [&]() {
        m.memory().controller(1).store(flag, 1, []() {});
    });
    m.eventQueue().schedule(300 * kMicrosecond, [&]() {
        m.memory().controller(1).store(flag, 2, []() {});
    });
    m.run();
    EXPECT_TRUE(passed);
    EXPECT_GT(passed_at, 300 * kMicrosecond);
}

TEST(SpinWait, SpinTimeAccrued)
{
    Machine m(SystemConfig::small(1));
    const Addr flag = m.memory().addressMap().allocShared(4096);
    bool passed = false;
    thrifty::spinOnFlag(m.thread(0), flag, 1, [&]() { passed = true; });
    m.eventQueue().schedule(2 * kMillisecond, [&]() {
        m.memory().controller(1).store(flag, 1, []() {});
    });
    m.run();
    ASSERT_TRUE(passed);
    const Tick spin = m.cpu(0).energy().time(power::Bucket::Spin);
    EXPECT_NEAR(static_cast<double>(spin), 2.0 * kMillisecond,
                0.05 * kMillisecond);
}

TEST(InterventionWake, DirtyLineAtSleeperIsServedAfterWake)
{
    Machine m(SystemConfig::small(1));
    // Node 0 dirties a *private* line (private pages are exempt from
    // the pre-sleep flush).
    const Addr priv = m.memory().addressMap().allocPrivate(0, 4096);
    bool stored = false;
    m.memory().controller(0).store(priv, 0xfeed,
                                   [&]() { stored = true; });
    m.eventQueue().run();
    ASSERT_TRUE(stored);

    // Node 0 goes into a deep (non-snooping) sleep.
    power::SleepStateTable table =
        power::SleepStateTable::paperDefault();
    bool woke = false;
    m.cpu(0).enterSleep(table.at(2),
                        [&](mem::WakeReason) { woke = true; });
    m.eventQueue().run(100 * kMicrosecond);
    ASSERT_EQ(m.cpu(0).state(), cpu::CpuState::Sleeping);
    // The dirty private line survived the flush.
    ASSERT_EQ(m.memory().controller(0).l2State(priv),
              mem::LineState::Modified);

    // Node 1 now reads that line: the forwarded request finds a gated
    // cache with dirty data -> safety wake, then service.
    std::optional<std::uint64_t> got;
    m.memory().controller(1).load(priv,
                                  [&](std::uint64_t v) { got = v; });
    m.run();

    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 0xfeedu);
    EXPECT_TRUE(woke);
    EXPECT_EQ(m.cpu(0).state(), cpu::CpuState::Active);
    EXPECT_DOUBLE_EQ(m.memory()
                         .controller(0)
                         .statistics()
                         .scalarValue("interventionWakes"),
                     1.0);
    // The old owner kept a Shared copy after the FwdGetS.
    EXPECT_EQ(m.memory().controller(0).l2State(priv),
              mem::LineState::Shared);
}

TEST(InterventionWake, CleanLineServedWithoutWaking)
{
    Machine m(SystemConfig::small(1));
    const Addr a = m.memory().addressMap().allocShared(4096);
    bool loaded = false;
    m.memory().controller(0).load(a, [&](std::uint64_t) {
        loaded = true;
    });
    m.eventQueue().run();
    ASSERT_TRUE(loaded); // clean E at node 0

    power::SleepStateTable table =
        power::SleepStateTable::paperDefault();
    m.cpu(0).enterSleep(table.at(2), [](mem::WakeReason) {});
    m.eventQueue().run(100 * kMicrosecond);
    ASSERT_EQ(m.cpu(0).state(), cpu::CpuState::Sleeping);

    // A remote read of the clean-exclusive line is answered from the
    // (never-gated) controller tags; the CPU stays asleep.
    std::optional<std::uint64_t> got;
    m.memory().controller(1).load(a,
                                  [&](std::uint64_t v) { got = v; });
    m.eventQueue().run(200 * kMicrosecond);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(m.cpu(0).state(), cpu::CpuState::Sleeping);
    EXPECT_DOUBLE_EQ(m.memory()
                         .controller(0)
                         .statistics()
                         .scalarValue("interventionWakes"),
                     0.0);
    m.cpu(0).wakeRequest(mem::WakeReason::Timer);
    m.run();
}

} // namespace
} // namespace tb
