/**
 * @file
 * Unit tests for the thrifty barrier mechanism itself: warm-up,
 * conditional sleep, state selection, wake-up policies, the
 * overprediction cutoff, the underprediction filter, oracle parking,
 * and false wake-ups.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "harness/machine.hh"
#include "sim/logging.hh"
#include "thrifty/conventional_barrier.hh"
#include "thrifty/thrifty_barrier.hh"

namespace tb {
namespace {

using harness::Machine;
using harness::SystemConfig;
using thrifty::SyncStats;
using thrifty::ThriftyBarrier;
using thrifty::ThriftyConfig;
using thrifty::ThriftyRuntime;
using thrifty::WakeupPolicy;

/** Drive all threads through @p instances rounds of compute+barrier. */
void
driveRounds(Machine& m, thrifty::Barrier& barrier, unsigned instances,
            const std::function<Tick(ThreadId, unsigned)>& delay,
            std::vector<Tick>* departs = nullptr)
{
    const unsigned n = m.config().numNodes();
    std::function<void(ThreadId, unsigned)> round =
        [&](ThreadId tid, unsigned inst) {
            if (inst >= instances)
                return;
            m.thread(tid).compute(delay(tid, inst), [&, tid, inst]() {
                barrier.arrive(m.thread(tid), [&, tid, inst]() {
                    if (departs)
                        (*departs)[tid] = m.eventQueue().now();
                    round(tid, inst + 1);
                });
            });
        };
    for (ThreadId t = 0; t < n; ++t)
        round(t, 0);
    m.run();
    // Counters land in per-thread shards; fold them before asserts.
    barrier.mergeStats();
}

/** Imbalanced schedule: thread 0 is always ~1ms late. */
Tick
imbalanced(ThreadId tid, unsigned)
{
    return tid == 0 ? Tick{kMillisecond} : Tick{20 * kMicrosecond};
}

struct Rig
{
    Machine m{SystemConfig::small(2)}; // 4 threads
    SyncStats stats;

    std::unique_ptr<ThriftyRuntime> rt;
    std::unique_ptr<ThriftyBarrier> barrier;

    explicit Rig(const ThriftyConfig& cfg = ThriftyConfig::thrifty())
    {
        rt = std::make_unique<ThriftyRuntime>(4, cfg, stats);
        barrier = std::make_unique<ThriftyBarrier>(
            m.eventQueue(), 0x42, *rt, m.memory(), "tb");
    }
};

TEST(ThriftyBarrier, WarmupInstanceSpins)
{
    Rig r;
    driveRounds(r.m, *r.barrier, 1, imbalanced);
    EXPECT_EQ(r.stats.instances, 1u);
    EXPECT_EQ(r.stats.sleeps, 0u);
    EXPECT_EQ(r.stats.spins, 3u);
}

TEST(ThriftyBarrier, SleepsAfterWarmupAndPicksDeepestState)
{
    Rig r;
    driveRounds(r.m, *r.barrier, 3, imbalanced);
    EXPECT_EQ(r.stats.instances, 3u);
    // Instances 2 and 3: the three early threads sleep.
    EXPECT_EQ(r.stats.sleeps, 6u);
    // Stall ~1ms >> 70us: Sleep3 must be chosen.
    double deep = 0.0;
    for (NodeId n = 1; n < 4; ++n) {
        deep += r.m.cpu(n).statistics().scalarValue(
            "sleepEntries.Sleep3");
    }
    EXPECT_DOUBLE_EQ(deep, 6.0);
}

TEST(ThriftyBarrier, ConditionalSleepRefusesShortStall)
{
    Rig r;
    // Stalls of ~10us: below even Halt's 20us round trip.
    driveRounds(r.m, *r.barrier, 3, [](ThreadId tid, unsigned) {
        return tid == 0 ? Tick{110 * kMicrosecond}
                        : Tick{100 * kMicrosecond};
    });
    EXPECT_EQ(r.stats.sleeps, 0u);
    EXPECT_EQ(r.stats.spins, 9u);
}

TEST(ThriftyBarrier, HaltOnlyTableNeverGoesDeeper)
{
    Rig r(ThriftyConfig::thriftyHalt());
    driveRounds(r.m, *r.barrier, 3, imbalanced);
    EXPECT_GT(r.stats.sleeps, 0u);
    for (NodeId n = 0; n < 4; ++n) {
        EXPECT_FALSE(r.m.cpu(n).statistics().hasScalar(
            "sleepEntries.Sleep3"));
        EXPECT_FALSE(r.m.cpu(n).statistics().hasScalar(
            "sleepEntries.Sleep2"));
    }
}

TEST(ThriftyBarrier, NoPerformanceLossOnSteadyWorkload)
{
    // Same workload, Baseline vs Thrifty: release times must agree
    // within the wake-up tolerance.
    std::vector<Tick> base_departs(4, 0), thrifty_departs(4, 0);
    {
        Machine m(SystemConfig::small(2));
        SyncStats stats;
        thrifty::ConventionalBarrier b(m.eventQueue(), 0x42, 4,
                                       m.memory(), stats, "cb");
        driveRounds(m, b, 5, imbalanced, &base_departs);
    }
    {
        Rig r;
        driveRounds(r.m, *r.barrier, 5, imbalanced, &thrifty_departs);
    }
    for (unsigned t = 0; t < 4; ++t) {
        const double slow =
            static_cast<double>(thrifty_departs[t]) /
            static_cast<double>(base_departs[t]);
        EXPECT_LT(slow, 1.02) << "thread " << t;
    }
}

TEST(ThriftyBarrier, TraceBitMatchesActualInterval)
{
    Rig r;
    r.stats.traceEnabled = true;
    driveRounds(r.m, *r.barrier, 4, imbalanced);
    ASSERT_EQ(r.stats.trace.size(), 16u);
    for (const auto& e : r.stats.trace) {
        if (e.instance == 0)
            continue; // first interval includes program start skew
        // Interval is dominated by the slow thread's 1ms compute.
        EXPECT_NEAR(static_cast<double>(e.bit), 1.0 * kMillisecond,
                    0.1 * kMillisecond);
        EXPECT_EQ(e.bit, e.compute + e.stall);
    }
}

TEST(ThriftyBarrier, ExternalOnlyPolicyWakesLate)
{
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    cfg.wakeup = WakeupPolicy::External;
    Rig r(cfg);
    std::vector<Tick> departs(4, 0);
    driveRounds(r.m, *r.barrier, 3, imbalanced, &departs);
    EXPECT_GT(r.stats.sleeps, 0u);
    // Early threads (Sleep3 sleepers) exit a full up-transition after
    // the last thread.
    EXPECT_GE(departs[1], departs[0] + 30 * kMicrosecond);
}

TEST(ThriftyBarrier, InternalOnlyPolicyCompletes)
{
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    cfg.wakeup = WakeupPolicy::Internal;
    // Disable the cutoff so mispredictions keep sleeping.
    cfg.overpredictionThreshold = -1.0;
    Rig r(cfg);
    driveRounds(r.m, *r.barrier, 5, imbalanced);
    EXPECT_EQ(r.stats.instances, 5u);
    EXPECT_GT(r.stats.sleeps, 0u);
}

TEST(ThriftyBarrier, HybridBeatsExternalOnWakeTimeliness)
{
    std::vector<Tick> ext_departs(4, 0), hyb_departs(4, 0);
    {
        ThriftyConfig cfg = ThriftyConfig::thrifty();
        cfg.wakeup = WakeupPolicy::External;
        Rig r(cfg);
        driveRounds(r.m, *r.barrier, 5, imbalanced, &ext_departs);
    }
    {
        Rig r; // hybrid default
        driveRounds(r.m, *r.barrier, 5, imbalanced, &hyb_departs);
    }
    // The hybrid's timer anticipates the release; sleepers depart
    // earlier than under external-only wake-up.
    EXPECT_LT(hyb_departs[1], ext_departs[1]);
}

TEST(ThriftyBarrier, OverpredictionCutoffDisablesPrediction)
{
    Rig r;
    // Interval crashes from 2ms to 100us after instance 3: last-value
    // overpredicts, threads oversleep, wake late, and the 10% cutoff
    // fires.
    driveRounds(r.m, *r.barrier, 8, [](ThreadId tid, unsigned inst) {
        const Tick base = inst < 3 ? Tick{2 * kMillisecond}
                                   : Tick{100 * kMicrosecond};
        return tid == 0 ? base + base / 10 : base;
    });
    EXPECT_GT(r.stats.cutoffs, 0u);
    // Once cut off, those threads spin instead of sleeping.
    EXPECT_GT(r.stats.spins, 3u);
    EXPECT_EQ(r.stats.instances, 8u);
}

TEST(ThriftyBarrier, CutoffDisabledWhenThresholdNegative)
{
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    cfg.overpredictionThreshold = -1.0;
    Rig r(cfg);
    driveRounds(r.m, *r.barrier, 8, [](ThreadId tid, unsigned inst) {
        const Tick base = inst < 3 ? Tick{2 * kMillisecond}
                                   : Tick{100 * kMicrosecond};
        return tid == 0 ? base + base / 10 : base;
    });
    EXPECT_EQ(r.stats.cutoffs, 0u);
}

TEST(ThriftyBarrier, UnderpredictionFilterSkipsSpikes)
{
    Rig r;
    // Instance 4 is a 30x outlier (models a context switch / page
    // fault); the filter must not feed it to the predictor.
    driveRounds(r.m, *r.barrier, 6, [](ThreadId tid, unsigned inst) {
        Tick base = inst == 3 ? Tick{30 * kMillisecond}
                              : Tick{kMillisecond};
        return tid == 0 ? base + base / 10 : base;
    });
    EXPECT_GE(r.stats.filteredUpdates, 1u);
    // The stored prediction still reflects the normal interval.
    const Tick stored = r.rt->predictor().stored(0x42).value();
    EXPECT_LT(stored, 3 * kMillisecond);
}

TEST(ThriftyBarrier, FilterDisabledAcceptsSpikes)
{
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    cfg.underpredictionFilter = 0.0;
    Rig r(cfg);
    driveRounds(r.m, *r.barrier, 5, [](ThreadId tid, unsigned inst) {
        Tick base = inst == 3 ? Tick{30 * kMillisecond}
                              : Tick{kMillisecond};
        return tid == 0 ? base + base / 10 : base;
    });
    EXPECT_EQ(r.stats.filteredUpdates, 0u);
}

TEST(ThriftyBarrier, OracleParksAndResumesAtRelease)
{
    Rig r(ThriftyConfig::oracleHalt());
    std::vector<Tick> departs(4, 0);
    driveRounds(r.m, *r.barrier, 3, imbalanced, &departs);
    EXPECT_EQ(r.stats.instances, 3u);
    EXPECT_GT(r.stats.sleeps, 0u);
    // Parked threads resume exactly at the release: departures of
    // early threads must not lag the releaser's.
    EXPECT_LE(departs[1], departs[0] + kMicrosecond);
    // And energy must include Sleep but (Halt oracle) no Spin beyond
    // zero.
    power::EnergyAccount total = r.m.totalEnergy();
    EXPECT_GT(total.time(power::Bucket::Sleep), 0u);
    EXPECT_EQ(total.time(power::Bucket::Spin), 0u);
}

TEST(ThriftyBarrier, OracleShortStallSpinsAnalytically)
{
    Rig r(ThriftyConfig::oracleHalt());
    driveRounds(r.m, *r.barrier, 2, [](ThreadId tid, unsigned) {
        return tid == 0 ? Tick{105 * kMicrosecond}
                        : Tick{100 * kMicrosecond};
    });
    // ~5us stall < Halt round trip: the oracle spins it.
    EXPECT_EQ(r.stats.sleeps, 0u);
    EXPECT_GT(r.stats.spins, 0u);
    power::EnergyAccount total = r.m.totalEnergy();
    EXPECT_GT(total.time(power::Bucket::Spin), 0u);
    EXPECT_EQ(total.time(power::Bucket::Sleep), 0u);
}

TEST(ThriftyBarrier, IdealUsesDeepStatesWithoutFlushing)
{
    Rig r(ThriftyConfig::idealConfig());
    driveRounds(r.m, *r.barrier, 3, imbalanced);
    power::EnergyAccount total = r.m.totalEnergy();
    EXPECT_GT(total.time(power::Bucket::Sleep), 0u);
    for (NodeId n = 0; n < 4; ++n) {
        EXPECT_DOUBLE_EQ(
            r.m.cpu(n).statistics().scalarValue("flushes"), 0.0);
    }
}

TEST(ThriftyBarrier, FalseWakeupSurvivesViaResidualSpin)
{
    Rig r;
    // Schedule a spurious invalidation of the flag line while the
    // early threads are asleep in instance 2.
    driveRounds(r.m, *r.barrier, 1, imbalanced); // warm-up
    const Addr flag = r.barrier->flagAddress();
    // Re-drive a second instance manually with the injection.
    std::vector<Tick> departs(4, 0);
    const unsigned n = 4;
    for (ThreadId t = 0; t < n; ++t) {
        r.m.thread(t).compute(imbalanced(t, 1), [&, t]() {
            r.barrier->arrive(r.m.thread(t), [&, t]() {
                departs[t] = r.m.eventQueue().now();
            });
        });
    }
    r.m.eventQueue().schedule(
        r.m.eventQueue().now() + 500 * kMicrosecond, [&]() {
            r.m.memory().controller(1).injectSpuriousInvalidation(flag);
        });
    r.m.run();
    r.barrier->mergeStats();
    // Everyone still departs, and not before the slow thread arrived.
    for (Tick d : departs)
        EXPECT_GE(d, kMillisecond);
    EXPECT_EQ(r.stats.instances, 2u);
    EXPECT_DOUBLE_EQ(r.m.memory()
                         .controller(1)
                         .statistics()
                         .scalarValue("falseWakes"),
                     1.0);
}

TEST(ThriftyBarrier, MixedConventionalAndThriftyCoexist)
{
    // The paper: "thrifty and conventional barriers may co-exist in
    // the same binary."
    Machine m(SystemConfig::small(2));
    SyncStats stats;
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    ThriftyRuntime rt(4, cfg, stats);
    ThriftyBarrier tb(m.eventQueue(), 0x1, rt, m.memory(), "tb");
    thrifty::ConventionalBarrier cb(m.eventQueue(), 0x2, 4, m.memory(),
                                    stats, "cb");

    std::function<void(ThreadId, unsigned)> round =
        [&](ThreadId tid, unsigned inst) {
            if (inst >= 6)
                return;
            thrifty::Barrier& b =
                (inst % 2 == 0) ? static_cast<thrifty::Barrier&>(tb)
                                : static_cast<thrifty::Barrier&>(cb);
            m.thread(tid).compute(imbalanced(tid, inst),
                                  [&, tid, inst]() {
                                      b.arrive(m.thread(tid),
                                               [&, tid, inst]() {
                                                   round(tid, inst + 1);
                                               });
                                  });
        };
    for (ThreadId t = 0; t < 4; ++t)
        round(t, 0);
    m.run();
    tb.mergeStats();
    cb.mergeStats();
    // Six rounds, alternating thrifty/conventional: six instances.
    EXPECT_EQ(stats.instances, 6u);
    EXPECT_GT(stats.sleeps, 0u);
}

TEST(ThriftyBarrier, EmptyStateTableAlwaysSpins)
{
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    cfg.states = power::SleepStateTable();
    Rig r(cfg);
    driveRounds(r.m, *r.barrier, 4, imbalanced);
    EXPECT_EQ(r.stats.sleeps, 0u);
    EXPECT_EQ(r.stats.spins, 12u);
    EXPECT_EQ(r.stats.instances, 4u);
}

TEST(ThriftyBarrier, IdealRequiresOracle)
{
    SyncStats stats;
    ThriftyConfig cfg;
    cfg.ideal = true;
    cfg.oracle = false;
    EXPECT_THROW(ThriftyRuntime(4, cfg, stats), FatalError);
}

} // namespace
} // namespace tb
