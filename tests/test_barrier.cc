/**
 * @file
 * Unit tests for the conventional (Baseline) sense-reversal barrier.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "harness/machine.hh"
#include "sim/logging.hh"
#include "thrifty/conventional_barrier.hh"

namespace tb {
namespace {

using harness::Machine;
using harness::SystemConfig;
using thrifty::Barrier;
using thrifty::ConventionalBarrier;
using thrifty::SyncStats;

/** Drive all threads through @p instances rounds of compute+barrier.
 *  @p delay(tid, instance) gives each thread's compute time. */
void
driveRounds(Machine& m, Barrier& barrier, unsigned instances,
            const std::function<Tick(ThreadId, unsigned)>& delay,
            std::vector<Tick>* depart_ticks = nullptr)
{
    const unsigned n = m.config().numNodes();
    std::function<void(ThreadId, unsigned)> round =
        [&](ThreadId tid, unsigned inst) {
            if (inst >= instances)
                return;
            m.thread(tid).compute(delay(tid, inst), [&, tid, inst]() {
                barrier.arrive(m.thread(tid), [&, tid, inst]() {
                    if (depart_ticks)
                        (*depart_ticks)[tid] = m.eventQueue().now();
                    round(tid, inst + 1);
                });
            });
        };
    for (ThreadId t = 0; t < n; ++t)
        round(t, 0);
    m.run();
    // Counters land in per-thread shards; fold them before asserts.
    barrier.mergeStats();
}

TEST(ConventionalBarrier, ReleasesAllThreadsTogether)
{
    Machine m(SystemConfig::small(2)); // 4 threads
    SyncStats stats;
    ConventionalBarrier b(m.eventQueue(), 0x1, 4, m.memory(), stats,
                          "b");
    std::vector<Tick> departs(4, 0);
    Tick last_arrival = 0;
    driveRounds(
        m, b, 1,
        [&](ThreadId tid, unsigned) {
            const Tick d = (tid + 1) * 100 * kMicrosecond;
            last_arrival = std::max(last_arrival, d);
            return d;
        },
        &departs);
    EXPECT_EQ(stats.instances, 1u);
    EXPECT_EQ(stats.arrivals, 4u);
    // Nobody departs before the last thread arrived.
    for (Tick d : departs)
        EXPECT_GE(d, last_arrival);
    // And everyone departs within a small window of the release.
    const Tick min_d = *std::min_element(departs.begin(), departs.end());
    const Tick max_d = *std::max_element(departs.begin(), departs.end());
    EXPECT_LT(max_d - min_d, 5 * kMicrosecond);
}

TEST(ConventionalBarrier, SenseReversalSurvivesManyInstances)
{
    Machine m(SystemConfig::small(2));
    SyncStats stats;
    ConventionalBarrier b(m.eventQueue(), 0x1, 4, m.memory(), stats,
                          "b");
    driveRounds(m, b, 10, [](ThreadId tid, unsigned inst) {
        // Rotate who is last each instance.
        return (1 + (tid + inst) % 4) * 50 * kMicrosecond;
    });
    EXPECT_EQ(stats.instances, 10u);
    EXPECT_EQ(stats.arrivals, 40u);
}

TEST(ConventionalBarrier, FastThreadCanLapSlowSpinner)
{
    // A thread may depart, compute quickly, and check in for the next
    // instance while stragglers of the previous one are still waking;
    // sense reversal must keep instances separate.
    Machine m(SystemConfig::small(2));
    SyncStats stats;
    ConventionalBarrier b(m.eventQueue(), 0x1, 4, m.memory(), stats,
                          "b");
    driveRounds(m, b, 6, [](ThreadId tid, unsigned) {
        return tid == 0 ? Tick{1 * kMicrosecond}
                        : Tick{400 * kMicrosecond};
    });
    EXPECT_EQ(stats.instances, 6u);
}

TEST(ConventionalBarrier, StallAccountingTracksImbalance)
{
    Machine m(SystemConfig::small(2));
    SyncStats stats;
    ConventionalBarrier b(m.eventQueue(), 0x1, 4, m.memory(), stats,
                          "b");
    // Three threads arrive at t=0-ish, one at 1ms: aggregate stall
    // ~3ms.
    driveRounds(m, b, 1, [](ThreadId tid, unsigned) {
        return tid == 3 ? Tick{kMillisecond} : Tick{1000};
    });
    EXPECT_NEAR(stats.totalStallTicks, 3.0 * kMillisecond,
                0.1 * kMillisecond);
}

TEST(ConventionalBarrier, SpinEnergyAccruedWhileWaiting)
{
    Machine m(SystemConfig::small(2));
    SyncStats stats;
    ConventionalBarrier b(m.eventQueue(), 0x1, 4, m.memory(), stats,
                          "b");
    driveRounds(m, b, 1, [](ThreadId tid, unsigned) {
        return tid == 0 ? Tick{kMillisecond} : Tick{1000};
    });
    // The three early threads spun for ~1ms each.
    power::EnergyAccount total = m.totalEnergy();
    EXPECT_NEAR(static_cast<double>(total.time(power::Bucket::Spin)),
                3.0 * kMillisecond, 0.1 * kMillisecond);
}

TEST(ConventionalBarrier, SingleThreadDegenerate)
{
    Machine m(SystemConfig::small(1)); // 2 nodes, use 1 participant
    SyncStats stats;
    ConventionalBarrier b(m.eventQueue(), 0x1, 1, m.memory(), stats,
                          "b");
    bool done = false;
    b.arrive(m.thread(0), [&]() { done = true; });
    m.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(stats.instances, 1u);
    EXPECT_EQ(stats.spins, 0u);
}

TEST(ConventionalBarrier, OutOfRangeThreadPanics)
{
    Machine m(SystemConfig::small(2));
    SyncStats stats;
    ConventionalBarrier b(m.eventQueue(), 0x1, 2, m.memory(), stats,
                          "b");
    EXPECT_THROW(b.arrive(m.thread(3), []() {}), PanicError);
}

TEST(ConventionalBarrier, ZeroThreadsFatal)
{
    Machine m(SystemConfig::small(1));
    SyncStats stats;
    EXPECT_THROW(ConventionalBarrier(m.eventQueue(), 0x1, 0,
                                     m.memory(), stats, "b"),
                 FatalError);
}

} // namespace
} // namespace tb
