/**
 * @file
 * Unit tests for the sleep-state table and energy accounting.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "power/sleep_states.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using power::Bucket;
using power::EnergyAccount;
using power::PowerParams;
using power::SleepState;
using power::SleepStateTable;

TEST(SleepStates, PaperDefaultMatchesTable3)
{
    SleepStateTable t = SleepStateTable::paperDefault();
    ASSERT_EQ(t.size(), 3u);

    EXPECT_EQ(t.at(0).name, "Sleep1(Halt)");
    EXPECT_NEAR(t.at(0).powerFraction, 1.0 - 0.702, 1e-12);
    EXPECT_EQ(t.at(0).transitionLatency, 10 * kMicrosecond);
    EXPECT_TRUE(t.at(0).snoopable);
    EXPECT_FALSE(t.at(0).voltageReduced);

    EXPECT_NEAR(t.at(1).powerFraction, 1.0 - 0.792, 1e-12);
    EXPECT_EQ(t.at(1).transitionLatency, 15 * kMicrosecond);
    EXPECT_FALSE(t.at(1).snoopable);
    EXPECT_FALSE(t.at(1).voltageReduced);

    EXPECT_NEAR(t.at(2).powerFraction, 1.0 - 0.978, 1e-12);
    EXPECT_EQ(t.at(2).transitionLatency, 35 * kMicrosecond);
    EXPECT_FALSE(t.at(2).snoopable);
    EXPECT_TRUE(t.at(2).voltageReduced);
}

TEST(SleepStates, SelectPicksDeepestThatFits)
{
    SleepStateTable t = SleepStateTable::paperDefault();
    // Stall below the Halt round trip: nothing fits.
    EXPECT_EQ(t.select(19 * kMicrosecond), nullptr);
    // Exactly Halt's round trip.
    ASSERT_NE(t.select(20 * kMicrosecond), nullptr);
    EXPECT_EQ(t.select(20 * kMicrosecond)->name, "Sleep1(Halt)");
    // Fits Sleep2 (30us) but not Sleep3 (70us).
    EXPECT_EQ(t.select(50 * kMicrosecond)->name, "Sleep2");
    // Deep stall: Sleep3.
    EXPECT_EQ(t.select(1 * kMillisecond)->name, "Sleep3");
}

TEST(SleepStates, HaltOnlyNeverPicksDeeper)
{
    SleepStateTable t = SleepStateTable::haltOnly();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.select(1 * kMillisecond)->name, "Sleep1(Halt)");
}

TEST(SleepStates, EmptyTableSelectsNothing)
{
    SleepStateTable t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.select(1 * kMillisecond), nullptr);
}

TEST(SleepStates, RejectsMisorderedTable)
{
    SleepState light{"a", 0.3, 10 * kMicrosecond, true, false};
    SleepState deep{"b", 0.1, 5 * kMicrosecond, false, false};
    EXPECT_THROW(SleepStateTable({light, deep}), FatalError);
    SleepState hungry{"c", 0.5, 20 * kMicrosecond, false, false};
    EXPECT_THROW(SleepStateTable({light, hungry}), FatalError);
}

TEST(PowerParams, DerivedWatts)
{
    PowerParams p;
    p.tdpMax = 30.0;
    p.activeFraction = 0.80;
    p.spinFraction = 0.85;
    EXPECT_DOUBLE_EQ(p.activeWatts(), 24.0);
    EXPECT_DOUBLE_EQ(p.spinWatts(), 20.4);
    EXPECT_DOUBLE_EQ(p.sleepWatts(0.022), 0.66);
}

TEST(EnergyAccount, AccrualAndTotals)
{
    EnergyAccount a;
    a.accrue(Bucket::Compute, kSecond, 10.0);     // 10 J
    a.accrue(Bucket::Spin, kSecond / 2, 8.0);     // 4 J
    a.accrue(Bucket::Sleep, 2 * kSecond, 0.5);    // 1 J
    EXPECT_DOUBLE_EQ(a.energy(Bucket::Compute), 10.0);
    EXPECT_DOUBLE_EQ(a.energy(Bucket::Spin), 4.0);
    EXPECT_DOUBLE_EQ(a.energy(Bucket::Sleep), 1.0);
    EXPECT_DOUBLE_EQ(a.energy(Bucket::Transition), 0.0);
    EXPECT_DOUBLE_EQ(a.totalEnergy(), 15.0);
    EXPECT_EQ(a.totalTime(), 3 * kSecond + kSecond / 2);
}

TEST(EnergyAccount, BucketsArePartition)
{
    // The accounting identity: bucket sums equal totals exactly.
    EnergyAccount a;
    double joules = 0.0;
    Tick ticks = 0;
    for (int i = 0; i < 100; ++i) {
        const auto b = static_cast<Bucket>(i % power::kNumBuckets);
        const Tick d = (i + 1) * kMicrosecond;
        const double w = 0.1 * i;
        a.accrue(b, d, w);
        joules += w * ticksToSeconds(d);
        ticks += d;
    }
    EXPECT_NEAR(a.totalEnergy(), joules, 1e-12);
    EXPECT_EQ(a.totalTime(), ticks);
}

TEST(EnergyAccount, MergeAndClear)
{
    EnergyAccount a, b;
    a.accrue(Bucket::Compute, kSecond, 1.0);
    b.accrue(Bucket::Compute, kSecond, 2.0);
    b.accrue(Bucket::Sleep, kSecond, 0.5);
    a.add(b);
    EXPECT_DOUBLE_EQ(a.energy(Bucket::Compute), 3.0);
    EXPECT_DOUBLE_EQ(a.energy(Bucket::Sleep), 0.5);
    a.clear();
    EXPECT_DOUBLE_EQ(a.totalEnergy(), 0.0);
    EXPECT_EQ(a.totalTime(), 0u);
}

TEST(EnergyAccount, NegativePowerPanics)
{
    EnergyAccount a;
    EXPECT_THROW(a.accrue(Bucket::Compute, 1, -1.0), PanicError);
}

TEST(Buckets, NamesStable)
{
    EXPECT_STREQ(power::bucketName(Bucket::Compute), "Compute");
    EXPECT_STREQ(power::bucketName(Bucket::Spin), "Spin");
    EXPECT_STREQ(power::bucketName(Bucket::Transition), "Transition");
    EXPECT_STREQ(power::bucketName(Bucket::Sleep), "Sleep");
}

} // namespace
} // namespace tb
