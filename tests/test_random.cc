/**
 * @file
 * Unit tests for the deterministic random streams.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

namespace tb {
namespace {

TEST(Random, DeterministicForSameSeed)
{
    Random a(123);
    Random b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DistinctSeedsDecorrelate)
{
    Random a(1);
    Random b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, UniformRangeRespectsBounds)
{
    Random r(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(3.0, 5.0);
        ASSERT_GE(u, 3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Random, UniformIntBoundedAndCoversRange)
{
    Random r(11);
    bool seen[10] = {};
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = r.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Random, NormalMomentsRoughlyCorrect)
{
    Random r(13);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Random, LognormalMeanCvHitsTargets)
{
    Random r(17);
    const double mean = 400.0, cv = 0.3;
    double sum = 0.0, sum_sq = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const double x = r.lognormalMeanCv(mean, cv);
        ASSERT_GT(x, 0.0);
        sum += x;
        sum_sq += x * x;
    }
    const double m = sum / n;
    const double sd = std::sqrt(sum_sq / n - m * m);
    EXPECT_NEAR(m, mean, mean * 0.02);
    EXPECT_NEAR(sd / m, cv, cv * 0.08);
}

TEST(Random, LognormalZeroCvIsConstant)
{
    Random r(19);
    EXPECT_DOUBLE_EQ(r.lognormalMeanCv(123.0, 0.0), 123.0);
}

TEST(Random, ChanceExtremes)
{
    Random r(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, ChanceFrequencyTracksProbability)
{
    Random r(29);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

} // namespace
} // namespace tb
