/**
 * @file
 * Fuzz-style stress runs with the protocol checker armed: full
 * experiments on 2..16-node machines across several seeds,
 * configurations and both forwarding protocols. Any SWMR, directory
 * agreement, value consistency, event discipline, sleep safety or
 * wake-up exclusivity violation panics and fails the test.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "harness/experiment.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace {

harness::ExperimentResult
checkedRun(unsigned dim, std::uint64_t seed, const char* app,
           harness::ConfigKind kind, bool three_hop)
{
    harness::SystemConfig sys = harness::SystemConfig::small(dim);
    sys.seed = seed;
    sys.memory.threeHopForwarding = three_hop;
    harness::RunOptions opt;
    opt.check = true;
    return harness::runExperiment(sys, workloads::appByName(app), kind,
                                  opt);
}

class CheckerStress : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CheckerStress, ThriftyRunsCleanAcrossSeeds)
{
    const unsigned dim = GetParam();
    for (std::uint64_t seed : {1, 7, 23}) {
        const auto r = checkedRun(dim, seed, "Radiosity",
                                  harness::ConfigKind::Thrifty, false);
        EXPECT_GT(r.execTime, 0u);
    }
}

TEST_P(CheckerStress, BaselineRunsClean)
{
    const unsigned dim = GetParam();
    for (std::uint64_t seed : {1, 7, 23}) {
        const auto r = checkedRun(dim, seed, "Radiosity",
                                  harness::ConfigKind::Baseline, false);
        EXPECT_GT(r.execTime, 0u);
    }
}

TEST_P(CheckerStress, ThreeHopForwardingRunsClean)
{
    const unsigned dim = GetParam();
    for (std::uint64_t seed : {1, 7, 23}) {
        const auto r = checkedRun(dim, seed, "Radiosity",
                                  harness::ConfigKind::Thrifty, true);
        EXPECT_GT(r.execTime, 0u);
    }
}

// 2, 4, 8 and 16 nodes.
INSTANTIATE_TEST_SUITE_P(Dims, CheckerStress,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(CheckerStressApps, HighImbalanceAppRunsClean)
{
    // Ocean has the paper's largest imbalance: the most sleep
    // episodes, flushes, deferred invalidations and timer/flag races.
    for (std::uint64_t seed : {1, 7, 23}) {
        const auto r = checkedRun(3, seed, "Ocean",
                                  harness::ConfigKind::Thrifty, false);
        EXPECT_GT(r.execTime, 0u);
    }
}

TEST(CheckerStressApps, DeepSleepConfigRunsClean)
{
    // Ideal keeps CPUs in the deepest state with no flush-avoidance
    // cutoffs -- maximal pressure on the non-snooping machinery.
    for (std::uint64_t seed : {1, 7, 23}) {
        const auto r = checkedRun(3, seed, "Barnes",
                                  harness::ConfigKind::Ideal, false);
        EXPECT_GT(r.execTime, 0u);
    }
}

} // namespace
} // namespace tb
