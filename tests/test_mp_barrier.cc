/**
 * @file
 * Unit tests for the message-passing thrifty barrier (the paper's
 * "other environments" claim, Section 1) and the MP endpoint layer.
 */

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <vector>

#include "harness/machine.hh"
#include "mp/mp_barrier.hh"
#include "mp/mp_endpoint.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using harness::Machine;
using harness::SystemConfig;
using mp::MpBarrier;
using mp::MpFabric;
using mp::MpMessage;
using mp::MpRuntime;
using thrifty::SyncStats;
using thrifty::ThriftyConfig;

TEST(MpEndpoint, DeliversMessagesWithPayload)
{
    EventQueue eq;
    noc::NetworkConfig ncfg;
    ncfg.dimension = 2;
    noc::Network net(eq, ncfg);
    MpFabric fabric(eq, net);

    std::optional<MpMessage> got;
    fabric.endpoint(3).setHandler(
        [&](const MpMessage& m) { got = m; });
    MpMessage m;
    m.tag = 7;
    m.a = 0x1234;
    m.b = 99;
    fabric.endpoint(0).send(3, m);
    eq.run();

    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, 7u);
    EXPECT_EQ(got->a, 0x1234u);
    EXPECT_EQ(got->b, 99u);
    EXPECT_EQ(got->src, 0u);
}

TEST(MpEndpoint, MultipleHandlersAllSeeMessages)
{
    EventQueue eq;
    noc::NetworkConfig ncfg;
    ncfg.dimension = 1;
    noc::Network net(eq, ncfg);
    MpFabric fabric(eq, net);

    int a = 0, b = 0;
    fabric.endpoint(1).addHandler([&](const MpMessage&) { ++a; });
    fabric.endpoint(1).addHandler([&](const MpMessage&) { ++b; });
    fabric.endpoint(0).send(1, MpMessage{});
    eq.run();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 1);
}

TEST(MpEndpoint, WakeOnMessageIsOneShot)
{
    EventQueue eq;
    noc::NetworkConfig ncfg;
    ncfg.dimension = 1;
    noc::Network net(eq, ncfg);
    MpFabric fabric(eq, net);

    int wakes = 0;
    fabric.endpoint(1).armWakeOnMessage([&]() { ++wakes; });
    fabric.endpoint(0).send(1, MpMessage{});
    fabric.endpoint(0).send(1, MpMessage{});
    eq.run();
    EXPECT_EQ(wakes, 1);
}

// ----------------------------------------------------------------------
// MP barrier rig.
// ----------------------------------------------------------------------

struct Rig
{
    Machine m{SystemConfig::small(2)}; // 4 nodes
    MpFabric fabric;
    SyncStats stats;
    std::unique_ptr<MpRuntime> rt;
    std::unique_ptr<MpBarrier> barrier;

    explicit Rig(ThriftyConfig cfg = ThriftyConfig::thrifty())
        : fabric(m.eventQueue(), m.network())
    {
        rt = std::make_unique<MpRuntime>(4, cfg, stats);
        std::vector<cpu::Cpu*> cpus;
        for (NodeId n = 0; n < 4; ++n)
            cpus.push_back(&m.cpu(n));
        barrier = std::make_unique<MpBarrier>(
            m.eventQueue(), 0x77, *rt, fabric, cpus, 0, "mpb");
    }

    void
    drive(unsigned instances,
          const std::function<Tick(ThreadId, unsigned)>& delay,
          std::vector<Tick>* departs = nullptr)
    {
        std::function<void(ThreadId, unsigned)> round =
            [&](ThreadId tid, unsigned inst) {
                if (inst >= instances)
                    return;
                m.thread(tid).compute(delay(tid, inst),
                                      [&, tid, inst]() {
                    barrier->arrive(tid, [&, tid, inst]() {
                        if (departs)
                            (*departs)[tid] = m.eventQueue().now();
                        round(tid, inst + 1);
                    });
                });
            };
        for (ThreadId t = 0; t < 4; ++t)
            round(t, 0);
        m.run();
    }
};

Tick
imbalanced(ThreadId tid, unsigned)
{
    return tid == 0 ? Tick{kMillisecond} : Tick{20 * kMicrosecond};
}

TEST(MpBarrier, ReleasesEveryoneNoEarlyPass)
{
    Rig r;
    std::vector<Tick> departs(4, 0);
    Tick last_arrival = 0;
    r.drive(
        1,
        [&](ThreadId tid, unsigned) {
            Tick d = (tid + 1) * 150 * kMicrosecond;
            last_arrival = std::max(last_arrival, d);
            return d;
        },
        &departs);
    EXPECT_EQ(r.stats.instances, 1u);
    for (Tick d : departs)
        EXPECT_GE(d, last_arrival);
}

TEST(MpBarrier, ManyInstancesComplete)
{
    Rig r;
    r.drive(8, [](ThreadId tid, unsigned inst) {
        return (1 + (tid + inst) % 4) * 120 * kMicrosecond;
    });
    EXPECT_EQ(r.stats.instances, 8u);
    EXPECT_EQ(r.stats.arrivals, 32u);
}

TEST(MpBarrier, WarmupSpinsThenSleeps)
{
    Rig r;
    r.drive(4, imbalanced);
    EXPECT_EQ(r.stats.instances, 4u);
    // First instance: no history for anyone; later instances: the
    // three early threads sleep.
    EXPECT_GT(r.stats.sleeps, 0u);
    EXPECT_GE(r.stats.spins, 3u);
    double deep = 0.0;
    for (NodeId n = 1; n < 4; ++n) {
        deep += r.m.cpu(n).statistics().scalarValue(
            "sleepEntries.Sleep3");
    }
    EXPECT_GT(deep, 0.0);
}

TEST(MpBarrier, SavesEnergyVersusPollingBaseline)
{
    double poll_energy = 0.0, thrifty_energy = 0.0;
    Tick poll_time = 0, thrifty_time = 0;
    {
        ThriftyConfig cfg = ThriftyConfig::thrifty();
        cfg.states = power::SleepStateTable(); // MP baseline: poll
        Rig r(cfg);
        r.drive(6, imbalanced);
        poll_energy = r.m.totalEnergy().totalEnergy();
        poll_time = r.m.eventQueue().now();
    }
    {
        Rig r;
        r.drive(6, imbalanced);
        thrifty_energy = r.m.totalEnergy().totalEnergy();
        thrifty_time = r.m.eventQueue().now();
    }
    EXPECT_LT(thrifty_energy, 0.9 * poll_energy);
    EXPECT_LT(static_cast<double>(thrifty_time),
              1.03 * static_cast<double>(poll_time));
}

TEST(MpBarrier, InternalOnlyPolicyCompletes)
{
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    cfg.wakeup = thrifty::WakeupPolicy::Internal;
    cfg.overpredictionThreshold = -1.0;
    Rig r(cfg);
    r.drive(5, imbalanced);
    EXPECT_EQ(r.stats.instances, 5u);
    EXPECT_GT(r.stats.sleeps, 0u);
}

TEST(MpBarrier, ExternalOnlyPolicyCompletes)
{
    ThriftyConfig cfg = ThriftyConfig::thrifty();
    cfg.wakeup = thrifty::WakeupPolicy::External;
    Rig r(cfg);
    r.drive(5, imbalanced);
    EXPECT_EQ(r.stats.instances, 5u);
    EXPECT_GT(r.stats.sleeps, 0u);
}

TEST(MpBarrier, CutoffEngagesOnCrashingIntervals)
{
    Rig r;
    r.drive(8, [](ThreadId tid, unsigned inst) {
        const Tick base = inst < 3 ? Tick{3 * kMillisecond}
                                   : Tick{120 * kMicrosecond};
        return tid == 0 ? base + base / 10 : base;
    });
    EXPECT_GT(r.stats.cutoffs, 0u);
    EXPECT_EQ(r.stats.instances, 8u);
}

TEST(MpBarrier, TwoBarriersDemultiplex)
{
    Rig r;
    std::vector<cpu::Cpu*> cpus;
    for (NodeId n = 0; n < 4; ++n)
        cpus.push_back(&r.m.cpu(n));
    MpBarrier second(r.m.eventQueue(), 0x88, *r.rt, r.fabric, cpus, 1,
                     "mpb2");

    unsigned completed = 0;
    std::function<void(ThreadId, unsigned)> round = [&](ThreadId tid,
                                                        unsigned inst) {
        if (inst >= 6) {
            ++completed;
            return;
        }
        MpBarrier& b = (inst % 2 == 0) ? *r.barrier : second;
        r.m.thread(tid).compute(imbalanced(tid, inst),
                                [&, tid, inst]() {
                                    b.arrive(tid, [&, tid, inst]() {
                                        round(tid, inst + 1);
                                    });
                                });
    };
    for (ThreadId t = 0; t < 4; ++t)
        round(t, 0);
    r.m.run();
    EXPECT_EQ(completed, 4u);
    // Six rounds alternating between the two barriers.
    EXPECT_EQ(r.stats.instances, 6u);
    EXPECT_EQ(r.barrier->instances(), 3u);
    EXPECT_EQ(second.instances(), 3u);
}

TEST(MpBarrier, DoubleArrivalPanics)
{
    Rig r;
    r.barrier->arrive(0, []() {});
    EXPECT_THROW(r.barrier->arrive(0, []() {}), PanicError);
}

TEST(MpBarrier, OracleModeUnsupported)
{
    SyncStats stats;
    EXPECT_THROW(
        MpRuntime(4, ThriftyConfig::oracleHalt(), stats),
        FatalError);
}

} // namespace
} // namespace tb
