/**
 * @file
 * Unit tests for the protocol invariant checker: every enforced
 * invariant is violated by direct hook injection and must panic with
 * a non-empty protocol trace; legal sequences must pass silently.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/protocol_checker.hh"
#include "mem/address_map.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using check::CheckerConfig;
using check::ProtocolChecker;
using mem::DirState;
using mem::LineState;
using mem::WakeReason;

CheckerConfig
smallConfig()
{
    CheckerConfig cfg;
    cfg.numNodes = 4;
    return cfg;
}

/** Run @p f, assert it panics, and return the panic message. */
template <typename F>
std::string
panicMessage(F&& f)
{
    try {
        f();
    } catch (const PanicError& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected a PanicError";
    return {};
}

constexpr Addr kLine = 0x2000;

TEST(ProtocolChecker, RejectsBadNodeCounts)
{
    CheckerConfig cfg;
    cfg.numNodes = 0;
    EXPECT_THROW(ProtocolChecker{cfg}, FatalError);
    cfg.numNodes = 65;
    EXPECT_THROW(ProtocolChecker{cfg}, FatalError);
}

TEST(ProtocolChecker, AcceptsLegalSharingSequence)
{
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(0, kLine, LineState::Exclusive);
    c.onCacheLineState(0, kLine, LineState::Modified);
    // Owner downgrades before anyone else gets a copy.
    c.onCacheLineState(0, kLine, LineState::Shared);
    c.onCacheLineState(1, kLine, LineState::Shared);
    c.onDirStable(kLine, DirState::Shared, 0b0011, kInvalidNode);
    // Both invalidated, then a new exclusive owner.
    c.onCacheLineState(0, kLine, LineState::Invalid);
    c.onCacheLineState(1, kLine, LineState::Invalid);
    c.onCacheLineState(2, kLine, LineState::Modified);
    c.onDirStable(kLine, DirState::Exclusive, 0, 2);
    EXPECT_GT(c.checksPerformed(), 0u);
}

TEST(ProtocolChecker, DetectsDoubleExclusive)
{
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(0, kLine, LineState::Modified);
    const std::string msg = panicMessage([&]() {
        c.onCacheLineState(1, kLine, LineState::Exclusive);
    });
    EXPECT_NE(msg.find("SWMR"), std::string::npos) << msg;
    EXPECT_NE(msg.find("protocol trace"), std::string::npos) << msg;
    // The trace must actually contain the offending transitions.
    EXPECT_NE(msg.find("node0 line 0x2000 -> M"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("node1 line 0x2000 -> E"), std::string::npos)
        << msg;
}

TEST(ProtocolChecker, DetectsExclusiveAlongsideShared)
{
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(0, kLine, LineState::Shared);
    const std::string msg = panicMessage([&]() {
        c.onCacheLineState(1, kLine, LineState::Modified);
    });
    EXPECT_NE(msg.find("SWMR"), std::string::npos) << msg;
    EXPECT_NE(msg.find("shared copies"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsStaleSharerVector)
{
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(2, kLine, LineState::Shared);
    // Directory closes the transaction believing only node0 shares.
    const std::string msg = panicMessage([&]() {
        c.onDirStable(kLine, DirState::Shared, 0b0001, kInvalidNode);
    });
    EXPECT_NE(msg.find("stale sharer vector"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("protocol trace"), std::string::npos) << msg;
}

TEST(ProtocolChecker, ExtraSharerBitsAreLegal)
{
    // Clean lines drop silently: the directory may conservatively
    // keep a bit for a node that no longer caches the line.
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(0, kLine, LineState::Shared);
    c.onDirStable(kLine, DirState::Shared, 0b1111, kInvalidNode);
}

TEST(ProtocolChecker, DetectsUncachedWithCopies)
{
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(3, kLine, LineState::Shared);
    const std::string msg = panicMessage([&]() {
        c.onDirStable(kLine, DirState::Uncached, 0, kInvalidNode);
    });
    EXPECT_NE(msg.find("Uncached"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsForeignCopyUnderExclusive)
{
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(1, kLine, LineState::Shared);
    const std::string msg = panicMessage([&]() {
        c.onDirStable(kLine, DirState::Exclusive, 0, 2);
    });
    EXPECT_NE(msg.find("foreign"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsStaleLoadValue)
{
    ProtocolChecker c(smallConfig());
    c.onStoreSerialized(0, 0x3008, 7);
    c.onLoadValue(1, 0x3008, 7); // fresh value: fine
    const std::string msg =
        panicMessage([&]() { c.onLoadValue(1, 0x3008, 5); });
    EXPECT_NE(msg.find("load"), std::string::npos) << msg;
    EXPECT_NE(msg.find("last serialized write"), std::string::npos)
        << msg;
    // Trace carries the store that defined the expected value.
    EXPECT_NE(msg.find("store"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsStaleAtomicRead)
{
    ProtocolChecker c(smallConfig());
    c.onStoreSerialized(0, 0x3010, 7);
    c.onRmwSerialized(1, 0x3010, 7, 8); // consistent fetch-op
    const std::string msg = panicMessage(
        [&]() { c.onRmwSerialized(2, 0x3010, 3, 4); });
    EXPECT_NE(msg.find("atomic"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsPastTickSchedule)
{
    ProtocolChecker c(smallConfig());
    const std::string msg =
        panicMessage([&]() { c.onSchedule(5, 0, 0, 10); });
    EXPECT_NE(msg.find("past"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsExecutionOrderInversion)
{
    ProtocolChecker c(smallConfig());
    c.onSchedule(10, 0, 3, 0);
    c.onSchedule(10, 0, 5, 0);
    c.onExecute(10, 0, 5);
    const std::string msg =
        panicMessage([&]() { c.onExecute(10, 0, 3); });
    EXPECT_NE(msg.find("total order"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsHybridWakeupDoubleFire)
{
    ProtocolChecker c(smallConfig());
    c.onSleepEnter(0, true);
    c.onWakeTrigger(0, WakeReason::Timer);
    const std::string msg = panicMessage(
        [&]() { c.onWakeTrigger(0, WakeReason::ExternalFlag); });
    EXPECT_NE(msg.find("exclusivity"), std::string::npos) << msg;
    EXPECT_NE(msg.find("protocol trace"), std::string::npos) << msg;
}

TEST(ProtocolChecker, WakeupStateResetsPerEpisode)
{
    ProtocolChecker c(smallConfig());
    c.onSleepEnter(0, true);
    c.onWakeTrigger(0, WakeReason::Timer);
    c.onSleepExit(0);
    // A fresh episode may use the other mechanism.
    c.onSleepEnter(0, true);
    c.onWakeTrigger(0, WakeReason::ExternalFlag);
    c.onSleepExit(0);
    // Safety wakes (Intervention/BufferOverflow) never conflict.
    c.onSleepEnter(1, false);
    c.onWakeTrigger(1, WakeReason::Intervention);
    c.onWakeTrigger(1, WakeReason::Timer);
}

TEST(ProtocolChecker, DetectsDirtySharedLineAtSleepEntry)
{
    ProtocolChecker c(smallConfig());
    mem::AddressMap map(4);
    const Addr shared = map.allocShared(mem::kPageBytes);
    c.bindAddressMap(&map);
    c.onCacheLineState(2, shared, LineState::Modified);
    const std::string msg =
        panicMessage([&]() { c.onSnoopableChange(2, false); });
    EXPECT_NE(msg.find("non-snooping"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dirty shared line"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DirtyPrivateLinesMaySleep)
{
    ProtocolChecker c(smallConfig());
    mem::AddressMap map(4);
    const Addr priv = map.allocPrivate(2, mem::kPageBytes);
    c.bindAddressMap(&map);
    c.onCacheLineState(2, priv, LineState::Modified);
    c.onSnoopableChange(2, false); // nobody else can want this line
    c.onSnoopableChange(2, true);
}

TEST(ProtocolChecker, DetectsInterventionBeyondBudget)
{
    EventQueue eq;
    CheckerConfig cfg = smallConfig();
    cfg.interventionBudget = 100;
    ProtocolChecker c(cfg);
    c.bindClock(&eq);
    eq.schedule(10, [&]() { c.onInterventionReceived(1, kLine); });
    eq.schedule(500, [&]() { c.onInterventionServed(1, kLine); });
    EXPECT_THROW(eq.run(), PanicError);
}

TEST(ProtocolChecker, InterventionWithinBudgetPasses)
{
    EventQueue eq;
    CheckerConfig cfg = smallConfig();
    cfg.interventionBudget = 1000;
    ProtocolChecker c(cfg);
    c.bindClock(&eq);
    eq.schedule(10, [&]() { c.onInterventionReceived(1, kLine); });
    eq.schedule(500, [&]() { c.onInterventionServed(1, kLine); });
    eq.run();
    c.finalCheck();
}

TEST(ProtocolChecker, FinalCheckCatchesUnansweredIntervention)
{
    ProtocolChecker c(smallConfig());
    c.onInterventionReceived(0, kLine);
    const std::string msg = panicMessage([&]() { c.finalCheck(); });
    EXPECT_NE(msg.find("never answered"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DetectsUnsolicitedInterventionReply)
{
    ProtocolChecker c(smallConfig());
    EXPECT_THROW(c.onInterventionServed(0, kLine), PanicError);
}

TEST(ProtocolChecker, FinalCheckCatchesEventImbalance)
{
    ProtocolChecker c(smallConfig());
    c.onSchedule(5, 0, 1, 0);
    c.onSchedule(6, 0, 2, 0);
    c.onExecute(5, 0, 1);
    const std::string msg = panicMessage([&]() { c.finalCheck(); });
    EXPECT_NE(msg.find("imbalance"), std::string::npos) << msg;
}

TEST(ProtocolChecker, BalancedEventAccountingPasses)
{
    ProtocolChecker c(smallConfig());
    c.onSchedule(5, 0, 1, 0);
    c.onSchedule(6, 0, 2, 0);
    c.onExecute(5, 0, 1);
    c.onCancel(6, 2);
    c.onDropDead(6, 2);
    c.finalCheck();
}

TEST(ProtocolChecker, FinalCheckCatchesUnreapedCancel)
{
    // A canceled event must eventually be dropped from the queue; a
    // drain that leaves the dead entry behind is an imbalance.
    ProtocolChecker c(smallConfig());
    c.onSchedule(6, 0, 2, 0);
    c.onCancel(6, 2);
    const std::string msg = panicMessage([&]() { c.finalCheck(); });
    EXPECT_NE(msg.find("never reaped"), std::string::npos) << msg;
}

TEST(ProtocolChecker, DropWithoutCancelPanics)
{
    ProtocolChecker c(smallConfig());
    c.onSchedule(6, 0, 2, 0);
    const std::string msg =
        panicMessage([&]() { c.onDropDead(6, 2); });
    EXPECT_NE(msg.find("without a matching cancelation"),
              std::string::npos)
        << msg;
}

TEST(ProtocolChecker, TraceIsLineFiltered)
{
    ProtocolChecker c(smallConfig());
    c.onCacheLineState(0, 0x2000, LineState::Shared);
    c.onCacheLineState(1, 0x9040, LineState::Modified);
    const std::string t = c.traceFor(0x2000);
    EXPECT_NE(t.find("0x2000"), std::string::npos) << t;
    EXPECT_EQ(t.find("0x9040"), std::string::npos) << t;
    // Unknown lines render an explicit empty marker.
    const std::string none = c.traceFor(0x777000);
    EXPECT_NE(none.find("no recorded events"), std::string::npos);
}

TEST(ProtocolChecker, TraceRingKeepsNewestEntries)
{
    CheckerConfig cfg = smallConfig();
    cfg.traceDepth = 8;
    ProtocolChecker c(cfg);
    for (unsigned i = 0; i < 100; ++i) {
        c.onStoreSerialized(0, kLine, i);
    }
    const std::string t = c.traceFor(kLine);
    EXPECT_EQ(t.find(":= 0\n"), std::string::npos) << t;
    EXPECT_NE(t.find(":= 99"), std::string::npos) << t;
}

} // namespace
} // namespace tb
