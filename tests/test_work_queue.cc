/**
 * @file
 * WorkQueue unit tests: the daemon's lease/complete/fail bookkeeping
 * with the clock passed in as a literal, covering lease ordering and
 * deadlines, retry budgets with deterministic backoff, idempotent
 * duplicate completions, late results from expired leases, and the
 * supervisor-shaped report the daemon emits.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/campaign_supervisor.hh"
#include "svc/work_queue.hh"

namespace tb {
namespace {

using harness::PointOutcome;
using svc::CompleteOutcome;
using svc::LeaseGrant;
using svc::LeaseLoss;
using svc::QueuePolicy;
using svc::WorkQueue;

QueuePolicy
policyWith(unsigned attempts, std::uint64_t leaseMs = 0)
{
    QueuePolicy p;
    p.maxAttempts = attempts;
    p.backoffBaseMs = 100;
    p.backoffCapMs = 10000;
    p.leaseMs = leaseMs;
    return p;
}

TEST(WorkQueue, LeasesLowestPendingFirst)
{
    WorkQueue q(3, policyWith(1));
    const LeaseGrant a = q.lease(/*worker=*/1, /*nowMs=*/0);
    const LeaseGrant b = q.lease(2, 0);
    const LeaseGrant c = q.lease(3, 0);
    ASSERT_TRUE(a.granted && b.granted && c.granted);
    EXPECT_EQ(a.point, 0u);
    EXPECT_EQ(b.point, 1u);
    EXPECT_EQ(c.point, 2u);
    EXPECT_EQ(a.attempt, 1u);

    // Everything leased: not granted, short default poll hint.
    const LeaseGrant d = q.lease(4, 0);
    EXPECT_FALSE(d.granted);
    EXPECT_GT(d.retryAfterMs, 0u);
    EXPECT_FALSE(q.allResolved());
}

TEST(WorkQueue, CompleteResolvesAndReports)
{
    WorkQueue q(2, policyWith(1));
    (void)q.lease(1, 0);
    (void)q.lease(1, 0);
    EXPECT_EQ(q.complete(0, 1, /*key=*/0xaa, /*checksum=*/0x11),
              CompleteOutcome::Accepted);
    EXPECT_EQ(q.complete(1, 1, 0xbb, 0x22),
              CompleteOutcome::Accepted);
    EXPECT_TRUE(q.allResolved());

    harness::SupervisorReport r;
    q.fillReport(&r);
    EXPECT_EQ(r.count(PointOutcome::Ok), 2u);
    EXPECT_TRUE(r.ok());
}

TEST(WorkQueue, CompletionFromWrongWorkerRejected)
{
    WorkQueue q(1, policyWith(1));
    (void)q.lease(1, 0);
    EXPECT_EQ(q.complete(0, /*worker=*/99, 0xaa, 0x11),
              CompleteOutcome::Rejected);
    EXPECT_EQ(q.complete(0, 1, 0xaa, 0x11),
              CompleteOutcome::Accepted);
}

TEST(WorkQueue, DuplicateCompletionsIdempotent)
{
    WorkQueue q(1, policyWith(3));
    (void)q.lease(1, 0);
    ASSERT_EQ(q.complete(0, 1, 0xaa, 0x11),
              CompleteOutcome::Accepted);
    // The same artifact again (slow duplicate): benign.
    EXPECT_EQ(q.complete(0, 2, 0xaa, 0x11),
              CompleteOutcome::DuplicateMatch);
    // A *different* artifact for the same point: a determinism
    // violation the daemon must surface, never silently prefer.
    EXPECT_EQ(q.complete(0, 2, 0xaa, 0x99),
              CompleteOutcome::DuplicateMismatch);
    EXPECT_EQ(q.complete(0, 2, 0xbb, 0x11),
              CompleteOutcome::DuplicateMismatch);
}

TEST(WorkQueue, FailConsumesBudgetThenBacksOff)
{
    WorkQueue q(1, policyWith(/*attempts=*/3));
    ASSERT_TRUE(q.lease(1, 1000).granted);
    q.fail(0, LeaseLoss::Disconnect, PointOutcome::Crash,
           "worker died", 1000);

    // Back in Pending but gated by the deterministic backoff.
    EXPECT_FALSE(q.allResolved());
    EXPECT_FALSE(q.lease(2, 1000).granted);
    const std::uint64_t gate = q.nextEventMs();
    EXPECT_GT(gate, 1000u);

    // The hint matches the supervisor's schedule exactly.
    harness::SupervisorPolicy sp;
    sp.backoffBaseMs = 100;
    sp.backoffCapMs = 10000;
    sp.seed = 1;
    EXPECT_EQ(gate - 1000,
              harness::CampaignSupervisor::backoffDelayMs(sp, 0, 2));

    // At the gate the point leases again, as attempt 2.
    const LeaseGrant g = q.lease(2, gate);
    ASSERT_TRUE(g.granted);
    EXPECT_EQ(g.attempt, 2u);
    EXPECT_EQ(q.retries(), 1u);
}

TEST(WorkQueue, BudgetExhaustionFailsThePoint)
{
    WorkQueue q(1, policyWith(/*attempts=*/2));
    std::uint64_t now = 0;
    for (int attempt = 0; attempt < 2; ++attempt) {
        now = q.nextEventMs() == UINT64_MAX ? now : q.nextEventMs();
        ASSERT_TRUE(q.lease(1, now).granted);
        q.fail(0, LeaseLoss::Expired, PointOutcome::Timeout,
               "deadline", now);
    }
    EXPECT_TRUE(q.allResolved());
    harness::SupervisorReport r;
    q.fillReport(&r);
    EXPECT_EQ(r.count(PointOutcome::Timeout), 1u);
    EXPECT_FALSE(r.ok());
    // The failure message names the lease-loss kind and attempts.
    EXPECT_NE(q.point(0).message.find("lease-expired"),
              std::string::npos);
    EXPECT_NE(q.point(0).message.find("2 attempt(s)"),
              std::string::npos);
}

TEST(WorkQueue, LeaseDeadlinesExpire)
{
    WorkQueue q(2, policyWith(2, /*leaseMs=*/500));
    ASSERT_TRUE(q.lease(1, 1000).granted);
    ASSERT_TRUE(q.lease(2, 1200).granted);

    EXPECT_TRUE(q.expired(1400).empty());
    const auto at1500 = q.expired(1500);
    ASSERT_EQ(at1500.size(), 1u);
    EXPECT_EQ(at1500[0], 0u);
    const auto at1700 = q.expired(1700);
    EXPECT_EQ(at1700.size(), 2u);

    // nextEventMs points at the earliest deadline.
    EXPECT_EQ(q.nextEventMs(), 1500u);
}

TEST(WorkQueue, LateResultFromExpiredLeaseAccepted)
{
    WorkQueue q(1, policyWith(3, /*leaseMs=*/500));
    ASSERT_TRUE(q.lease(1, 0).granted);
    q.fail(0, LeaseLoss::Expired, PointOutcome::Timeout, "slow", 500);
    // Worker 1 was slow, not dead: its result arrives while the point
    // waits out the backoff. The work is done and checksummed —
    // accept it rather than re-simulating.
    EXPECT_EQ(q.complete(0, 1, 0xaa, 0x11),
              CompleteOutcome::Accepted);
    EXPECT_TRUE(q.allResolved());
}

TEST(WorkQueue, LeasedByAndHeartbeatTrackOwnership)
{
    WorkQueue q(3, policyWith(1));
    (void)q.lease(7, 0);
    (void)q.lease(8, 0);
    (void)q.lease(7, 0);
    const auto of7 = q.leasedBy(7);
    ASSERT_EQ(of7.size(), 2u);
    EXPECT_EQ(of7[0], 0u);
    EXPECT_EQ(of7[1], 2u);
    EXPECT_TRUE(q.heartbeat(0, 7));
    EXPECT_FALSE(q.heartbeat(0, 8)) << "wrong holder";
    EXPECT_FALSE(q.heartbeat(1, 7));
    ASSERT_EQ(q.complete(1, 8, 1, 1), CompleteOutcome::Accepted);
    EXPECT_FALSE(q.heartbeat(1, 8)) << "done points have no lease";
}

TEST(WorkQueue, ResolveStoredSkipsTheQueue)
{
    WorkQueue q(3, policyWith(1));
    q.resolveStored(0, PointOutcome::Journaled, 0xaa, 0xbb);
    q.resolveStored(2, PointOutcome::Cached, 0xcc, 0xdd);

    const LeaseGrant g = q.lease(1, 0);
    ASSERT_TRUE(g.granted);
    EXPECT_EQ(g.point, 1u) << "stored points are never leased";
    ASSERT_EQ(q.complete(1, 1, 1, 1), CompleteOutcome::Accepted);
    EXPECT_TRUE(q.allResolved());

    // A reconnecting worker resubmitting a journal-resolved point is
    // classified against the recorded identity, not rejected as a
    // determinism violation.
    EXPECT_EQ(q.complete(0, 9, 0xaa, 0xbb),
              CompleteOutcome::DuplicateMatch);
    EXPECT_EQ(q.complete(0, 9, 0xaa, 0xff),
              CompleteOutcome::DuplicateMismatch);

    harness::SupervisorReport r;
    q.fillReport(&r);
    EXPECT_EQ(r.count(PointOutcome::Journaled), 1u);
    EXPECT_EQ(r.count(PointOutcome::Cached), 1u);
    EXPECT_EQ(r.count(PointOutcome::Ok), 1u);
    EXPECT_TRUE(r.ok());
}

TEST(WorkQueue, LeaseLossNamesAreLedgerVocabulary)
{
    EXPECT_STREQ(svc::leaseLossName(LeaseLoss::Expired),
                 "lease-expired");
    EXPECT_STREQ(svc::leaseLossName(LeaseLoss::Disconnect),
                 "disconnect");
    EXPECT_STREQ(svc::leaseLossName(LeaseLoss::HeartbeatLost),
                 "heartbeat-timeout");
    EXPECT_STREQ(svc::leaseLossName(LeaseLoss::ProtocolError),
                 "protocol-error");
    EXPECT_STREQ(svc::leaseLossName(LeaseLoss::WorkerError),
                 "point-error");
}

} // namespace
} // namespace tb
