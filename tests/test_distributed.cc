/**
 * @file
 * Distributed campaign service integration tests, all in-process over
 * a Unix-domain socket: a daemon thread runs CampaignService::run
 * while worker threads (and hand-rolled raw-frame clients standing in
 * for crashed or misbehaving workers) drive the TBF1 protocol.
 * Covers: multi-worker completion with artifacts identical to a
 * serial run, lease reassignment after a worker dies mid-lease,
 * heartbeat-loss detection, fingerprint rejection of a mismatched
 * worker, the crash ledger, and warm-cache daemon runs resolving
 * without a single lease.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "harness/posix_io.hh"
#include "svc/campaignd.hh"
#include "svc/frame.hh"
#include "svc/net.hh"
#include "svc/result_cache.hh"
#include "svc/service_journal.hh"
#include "svc/worker.hh"

namespace tb {
namespace {

using harness::fnv1a64;
using harness::PointOutcome;
using svc::CampaignService;
using svc::CampaignWorker;
using svc::Frame;
using svc::FrameType;
using svc::PayloadReader;
using svc::ServiceOptions;
using svc::WorkerOptions;

std::string
socketAddr(const std::string& name)
{
    const std::string path =
        testing::TempDir() + "tb_svc_" + name + ".sock";
    std::remove(path.c_str());
    return "unix:" + path;
}

std::vector<std::uint64_t>
testKeys(std::size_t count)
{
    std::vector<std::uint64_t> keys(count);
    for (std::size_t i = 0; i < count; ++i)
        keys[i] = fnv1a64("dist-test|point:" + std::to_string(i));
    return keys;
}

std::string
artifactOf(std::size_t i)
{
    return "artifact " + std::to_string(i) + "\n";
}

WorkerOptions
workerOpts(const std::string& addr, std::size_t count,
           const std::string& name)
{
    WorkerOptions wo;
    wo.connect = addr;
    wo.count = count;
    wo.keys = testKeys(count);
    wo.name = name;
    return wo;
}

/**
 * Minimal raw-frame client: connect + Hello, so tests can exercise
 * daemon failure paths (abrupt close mid-lease, heartbeat silence,
 * bad fingerprints) that a well-behaved CampaignWorker never takes.
 */
struct RawClient
{
    int fd = -1;

    bool hello(const std::string& addr, std::size_t count,
               std::uint64_t fingerprint)
    {
        std::string err;
        // Retry while the daemon thread starts up.
        for (int i = 0; i < 100 && fd < 0; ++i) {
            fd = svc::connectTo(addr, &err);
            if (fd < 0)
                harness::pollOne(-1, 0, 20);
        }
        if (fd < 0)
            return false;
        std::string p;
        svc::appendU64(&p, count);
        svc::appendU64(&p, fingerprint);
        svc::appendString(&p, "raw-client");
        if (!svc::sendFrame(fd, FrameType::Hello, p))
            return false;
        Frame f;
        return svc::recvFrame(fd, &f, &err) == 1 &&
               f.type == FrameType::HelloAck;
    }

    Frame request(FrameType type, const std::string& payload = "")
    {
        std::string err;
        Frame f;
        if (!svc::sendFrame(fd, type, payload) ||
            svc::recvFrame(fd, &f, &err) != 1)
            f.type = FrameType::Reject;
        return f;
    }

    ~RawClient()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

TEST(Distributed, WorkersCompleteCampaignIdenticallyToSerial)
{
    const std::size_t kCount = 12;
    const std::string addr = socketAddr("basic");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    so.queue.maxAttempts = 1;

    CampaignService service(so);
    service.setKeys(testKeys(kCount));

    harness::SupervisorReport report;
    std::thread daemon(
        [&]() { report = service.run(kCount); });

    const auto workerMain = [&](const std::string& name) {
        CampaignWorker w(workerOpts(addr, kCount, name));
        std::string err;
        EXPECT_TRUE(w.run(artifactOf, &err)) << err;
    };
    std::thread w1(workerMain, "w1");
    std::thread w2(workerMain, "w2");
    std::thread w3(workerMain, "w3");
    w1.join();
    w2.join();
    w3.join();
    daemon.join();

    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.count(PointOutcome::Ok), kCount);
    ASSERT_EQ(service.results().size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(service.results()[i], artifactOf(i))
            << "results must be what a serial run produces";
    EXPECT_EQ(service.stats().resultsAccepted, kCount);
    EXPECT_TRUE(service.ledger().empty());
}

TEST(Distributed, DeadWorkerLeaseReassigned)
{
    const std::size_t kCount = 4;
    const std::string addr = socketAddr("reassign");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    so.queue.maxAttempts = 2; // one retry for the lost lease
    so.queue.backoffBaseMs = 1;

    CampaignService service(so);
    service.setKeys(testKeys(kCount));
    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });

    // A worker takes a lease and dies (socket closes abruptly): the
    // in-process stand-in for SIGKILL.
    {
        RawClient crash;
        ASSERT_TRUE(crash.hello(addr, kCount,
                                svc::fingerprintKeys(testKeys(kCount))));
        const Frame grant = crash.request(FrameType::LeaseRequest);
        ASSERT_EQ(grant.type, FrameType::LeaseGrant);
        // Destructor closes the socket with the lease outstanding.
    }

    // A healthy worker finishes everything, the orphaned point
    // included.
    CampaignWorker w(workerOpts(addr, kCount, "survivor"));
    std::string err;
    EXPECT_TRUE(w.run(artifactOf, &err)) << err;
    daemon.join();

    EXPECT_TRUE(report.ok()) << "the campaign completes despite the "
                                "dead worker";
    EXPECT_EQ(report.count(PointOutcome::Ok), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(service.results()[i], artifactOf(i));

    // The death is in the ledger, attributed and classified.
    EXPECT_GE(service.stats().disconnects, 1u);
    ASSERT_FALSE(service.ledger().empty());
    std::ostringstream jsonl;
    service.ledger().writeJsonl(jsonl, "dist-test");
    EXPECT_NE(jsonl.str().find("\"kind\": \"crash-ledger\""),
              std::string::npos);
    EXPECT_NE(jsonl.str().find("disconnect"), std::string::npos);
    EXPECT_NE(jsonl.str().find("raw-client"), std::string::npos);
}

TEST(Distributed, SilentWorkerDeclaredDeadByHeartbeat)
{
    const std::size_t kCount = 2;
    const std::string addr = socketAddr("heartbeat");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    so.heartbeatMs = 25; // dead after ~3 missed intervals
    so.queue.maxAttempts = 2;
    so.queue.backoffBaseMs = 1;

    CampaignService service(so);
    service.setKeys(testKeys(kCount));
    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });

    // Lease a point, then go silent with the socket still open — a
    // worker wedged inside a simulation.
    RawClient wedged;
    ASSERT_TRUE(wedged.hello(addr, kCount,
                             svc::fingerprintKeys(testKeys(kCount))));
    ASSERT_EQ(wedged.request(FrameType::LeaseRequest).type,
              FrameType::LeaseGrant);

    CampaignWorker w(workerOpts(addr, kCount, "alive"));
    std::string err;
    EXPECT_TRUE(w.run(artifactOf, &err)) << err;
    daemon.join();

    EXPECT_TRUE(report.ok());
    EXPECT_GE(service.stats().heartbeatTimeouts, 1u);
    std::ostringstream jsonl;
    service.ledger().writeJsonl(jsonl, "dist-test");
    EXPECT_NE(jsonl.str().find("heartbeat-timeout"),
              std::string::npos);
}

TEST(Distributed, MismatchedFingerprintRejected)
{
    const std::size_t kCount = 3;
    const std::string addr = socketAddr("fingerprint");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";

    CampaignService service(so);
    service.setKeys(testKeys(kCount));
    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });

    // A worker built from a different sweep (wrong count and keys)
    // must be turned away at Hello, before it can lease anything.
    WorkerOptions wrong = workerOpts(addr, kCount, "imposter");
    wrong.keys[0] ^= 1;
    {
        CampaignWorker w(wrong);
        std::string err;
        EXPECT_FALSE(w.run(artifactOf, &err));
        EXPECT_NE(err.find("rejected"), std::string::npos) << err;
    }

    CampaignWorker w(workerOpts(addr, kCount, "genuine"));
    std::string err;
    EXPECT_TRUE(w.run(artifactOf, &err)) << err;
    daemon.join();
    EXPECT_TRUE(report.ok());
}

TEST(Distributed, WarmCacheRunNeedsNoWorkers)
{
    const std::size_t kCount = 5;
    const std::string cacheDir = testing::TempDir() + "tb_dist_warm";
    // Pre-populate via a cold daemon run with one worker.
    {
        const std::string addr = socketAddr("warm_cold");
        ServiceOptions so;
        so.listen = addr;
        so.campaign = "dist-test";
        CampaignService service(so);
        service.setKeys(testKeys(kCount));
        svc::ResultCache cache;
        // Wipe stale entries so the cold run is genuinely cold.
        ASSERT_TRUE(cache.open(cacheDir));
        for (std::uint64_t k : testKeys(kCount))
            std::remove(cache.entryPath(k).c_str());
        service.attachCache(&cache);
        harness::SupervisorReport report;
        std::thread daemon([&]() { report = service.run(kCount); });
        CampaignWorker w(workerOpts(addr, kCount, "filler"));
        std::string err;
        ASSERT_TRUE(w.run(artifactOf, &err)) << err;
        daemon.join();
        ASSERT_TRUE(report.ok());
        ASSERT_EQ(cache.stats().stores, kCount);
    }

    // Warm run: every point resolves from the cache before any worker
    // could connect — zero leases, zero simulations.
    const std::string addr = socketAddr("warm_hot");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    CampaignService service(so);
    service.setKeys(testKeys(kCount));
    svc::ResultCache cache;
    ASSERT_TRUE(cache.open(cacheDir));
    service.attachCache(&cache);
    const harness::SupervisorReport report = service.run(kCount);

    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.count(PointOutcome::Cached), kCount);
    EXPECT_EQ(service.stats().cacheHits, kCount);
    EXPECT_EQ(service.stats().leases, 0u);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(service.results()[i], artifactOf(i));
}

TEST(Distributed, JournalResolvesPointsBeforeWorkers)
{
    const std::size_t kCount = 3;
    const std::string journalPath =
        testing::TempDir() + "tb_dist_journal.jsonl";
    std::remove(journalPath.c_str());
    const auto keys = testKeys(kCount);

    {
        harness::CampaignJournal j;
        j.open(journalPath, /*resume=*/false);
        j.record(1, keys[1], 0, artifactOf(1));
    }

    const std::string addr = socketAddr("journal");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    CampaignService service(so);
    service.setKeys(keys);
    harness::CampaignJournal j;
    j.open(journalPath, /*resume=*/true);
    service.attachJournal(&j);

    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });
    int executed = 0;
    CampaignWorker w(workerOpts(addr, kCount, "w"));
    std::string err;
    ASSERT_TRUE(w.run(
        [&](std::size_t i) {
            ++executed;
            return artifactOf(i);
        },
        &err))
        << err;
    daemon.join();

    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.count(PointOutcome::Journaled), 1u);
    EXPECT_EQ(report.count(PointOutcome::Ok), 2u);
    EXPECT_EQ(executed, 2) << "the journaled point never reruns";
    EXPECT_EQ(service.stats().journalHits, 1u);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(service.results()[i], artifactOf(i));
    std::remove(journalPath.c_str());
}

TEST(Distributed, PointErrorsExhaustBudgetIntoManifest)
{
    const std::size_t kCount = 2;
    const std::string addr = socketAddr("pointerr");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    so.queue.maxAttempts = 2;
    so.queue.backoffBaseMs = 1;

    CampaignService service(so);
    service.setKeys(testKeys(kCount));
    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });

    CampaignWorker w(workerOpts(addr, kCount, "w"));
    std::string err;
    // Point 1 always throws: each attempt becomes a PointError frame,
    // the daemon retries it, then fails it for good.
    EXPECT_TRUE(w.run(
        [](std::size_t i) -> std::string {
            if (i == 1)
                throw std::runtime_error("injected point failure");
            return artifactOf(i);
        },
        &err))
        << err;
    daemon.join();

    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.count(PointOutcome::Ok), 1u);
    EXPECT_EQ(report.count(PointOutcome::Exception), 1u);
    EXPECT_EQ(report.retries, 1u);
    EXPECT_EQ(service.results()[0], artifactOf(0));
    EXPECT_TRUE(service.results()[1].empty());

    std::ostringstream manifest;
    report.writeManifest(manifest, "dist-test");
    EXPECT_NE(manifest.str().find("injected point failure"),
              std::string::npos);
    std::ostringstream jsonl;
    service.ledger().writeJsonl(jsonl, "dist-test");
    EXPECT_NE(jsonl.str().find("point-error"), std::string::npos);
}

/**
 * The worker half of crash recovery, against a hand-rolled fake
 * daemon: the first daemon incarnation grants a lease and dies
 * mid-exchange; the worker finishes the simulation locally, reconnects
 * under backoff, re-announces its identity by name, and resubmits the
 * stashed result to the second incarnation. No work is lost and no
 * point reruns.
 */
TEST(Distributed, WorkerReconnectsAndResubmitsAfterDaemonLoss)
{
    const std::size_t kCount = 1;
    const std::string addr = socketAddr("reconnect");
    std::string lerr;
    const int lfd = svc::listenOn(addr, &lerr);
    ASSERT_GE(lfd, 0) << lerr;

    WorkerOptions wo = workerOpts(addr, kCount, "phoenix");
    wo.reconnectWaitMs = 30000; // the "restart" is instant here
    CampaignWorker w(wo);
    std::string werr;
    bool ok = false;
    int executed = 0;
    std::thread worker([&]() {
        ok = w.run(
            [&](std::size_t i) {
                ++executed;
                return artifactOf(i);
            },
            &werr);
    });

    const auto expectFrame = [](int fd, FrameType t) {
        Frame f;
        std::string err;
        EXPECT_EQ(svc::recvFrame(fd, &f, &err), 1) << err;
        EXPECT_EQ(f.type, t) << svc::frameTypeName(f.type);
        return f;
    };
    const auto sendAck = [](int fd, std::uint64_t workerId) {
        std::string p;
        svc::appendU64(&p, workerId);
        svc::appendU64(&p, 50); // heartbeatMs
        svc::appendU64(&p, 0);  // leaseMs
        svc::appendU64(&p, 0);  // flags: keys not wanted
        ASSERT_TRUE(svc::sendFrame(fd, FrameType::HelloAck, p));
    };

    // Incarnation 1: handshake, grant point 0, die mid-lease.
    {
        const int fd = harness::acceptOne(lfd);
        ASSERT_GE(fd, 0);
        expectFrame(fd, FrameType::Hello);
        sendAck(fd, 7);
        expectFrame(fd, FrameType::LeaseRequest);
        std::string grant;
        svc::appendU64(&grant, 0); // point
        svc::appendU64(&grant, 1); // attempt
        ASSERT_TRUE(svc::sendFrame(fd, FrameType::LeaseGrant, grant));
        ::close(fd); // SIGKILL stand-in: lease outstanding, peer gone
    }

    // Incarnation 2: the worker comes back by name and leads with the
    // finished point; ack it and end the campaign.
    {
        const int fd = harness::acceptOne(lfd);
        ASSERT_GE(fd, 0);
        const Frame hello = expectFrame(fd, FrameType::Hello);
        PayloadReader hr(hello.payload);
        EXPECT_EQ(hr.u64(), kCount);
        EXPECT_EQ(hr.u64(), svc::fingerprintKeys(testKeys(kCount)));
        EXPECT_EQ(hr.str(), "phoenix")
            << "identity is re-announced by name after reconnect";
        sendAck(fd, 8); // the restarted daemon hands out a new id

        const Frame res = expectFrame(fd, FrameType::Result);
        PayloadReader rr(res.payload);
        EXPECT_EQ(rr.u64(), 0u);
        EXPECT_EQ(rr.u64(), testKeys(kCount)[0]);
        EXPECT_EQ(rr.u64(), fnv1a64(artifactOf(0)));
        EXPECT_EQ(rr.str(), artifactOf(0))
            << "the pre-crash simulation result survives the "
               "reconnect verbatim";
        std::string ack;
        svc::appendU64(&ack, 0);
        ASSERT_TRUE(svc::sendFrame(fd, FrameType::ResultAck, ack));
        expectFrame(fd, FrameType::LeaseRequest);
        ASSERT_TRUE(svc::sendFrame(fd, FrameType::Done, ""));
        expectFrame(fd, FrameType::Goodbye);
        ::close(fd);
    }
    worker.join();
    ::close(lfd);
    svc::cleanupAddress(addr);

    EXPECT_TRUE(ok) << werr;
    EXPECT_EQ(executed, 1) << "the point never reruns";
    EXPECT_EQ(w.stats().reconnects, 1u);
    EXPECT_EQ(w.stats().leases, 1u);
    EXPECT_EQ(w.stats().results, 1u);
}

/**
 * The daemon half of crash recovery: a service journal written by a
 * "dead" incarnation (a lease outstanding on attempt 3, one point
 * completed) is resumed by a fresh daemon, which restores the
 * scheduling state — attempt counts intact, completed work replayed,
 * the restart ledgered — and finishes the campaign with a new worker.
 */
TEST(Distributed, DaemonResumeRestoresSchedulingState)
{
    const std::size_t kCount = 3;
    const auto keys = testKeys(kCount);
    const std::string journalPath =
        testing::TempDir() + "tb_dist_resume.jsonl";
    const std::string svcPath = journalPath + ".svc";
    std::remove(journalPath.c_str());
    std::remove(svcPath.c_str());

    // The dead incarnation's journals: point 1 completed (result in
    // the completion journal, done event in the service journal);
    // point 0 lost twice and leased out on attempt 3 at the kill.
    {
        harness::CampaignJournal j;
        j.open(journalPath, /*resume=*/false);
        j.record(1, keys[1], 0, artifactOf(1));
    }
    {
        svc::ServiceJournal sj;
        sj.open(svcPath, /*resume=*/false);
        sj.recordCampaign(svc::fingerprintKeys(keys), kCount);
        sj.recordLease(0, 1, "w-old");
        sj.recordLoss(0, 1, "disconnect");
        sj.recordLease(0, 2, "w-old");
        sj.recordLoss(0, 2, "heartbeat-timeout");
        sj.recordLease(0, 3, "w-old");
        sj.recordLease(1, 1, "w-old");
        sj.recordDone(1);
    }

    const std::string addr = socketAddr("svc_resume");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    so.queue.maxAttempts = 9;
    so.queue.backoffBaseMs = 1;
    so.queue.backoffCapMs = 4;
    CampaignService service(so);
    service.setKeys(keys);
    harness::CampaignJournal j;
    j.open(journalPath, /*resume=*/true);
    service.attachJournal(&j);
    svc::ServiceJournal sj;
    sj.open(svcPath, /*resume=*/true);
    service.attachServiceJournal(&sj);

    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });
    CampaignWorker w(workerOpts(addr, kCount, "w-new"));
    std::string err;
    ASSERT_TRUE(w.run(artifactOf, &err)) << err;
    daemon.join();

    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.count(PointOutcome::Journaled), 1u);
    EXPECT_EQ(report.count(PointOutcome::Ok), 2u);
    // Point 0 carries its pre-crash history: restored at 3 attempts,
    // +1 for the post-restart lease that completed it.
    EXPECT_EQ(report.points[0].attempts, 4u);
    EXPECT_EQ(report.points[2].attempts, 1u);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(service.results()[i], artifactOf(i));

    // The restart itself lands in the crash ledger, so the manifest
    // records that this campaign crossed a daemon death.
    std::ostringstream jsonl;
    service.ledger().writeJsonl(jsonl, "dist-test");
    EXPECT_NE(jsonl.str().find("daemon-restart"), std::string::npos);
    std::remove(journalPath.c_str());
    std::remove(svcPath.c_str());
}

/**
 * Protocol hardening under the fault injector: every outbound frame
 * torn into two raw writes and every inbound header fragmented, yet
 * the campaign completes byte-identically with a clean ledger — frame
 * reassembly is invisible to the daemon.
 */
TEST(Distributed, TornFramesCompleteCampaignIdentically)
{
    const std::size_t kCount = 8;
    const std::string addr = socketAddr("faulty");
    ServiceOptions so;
    so.listen = addr;
    so.campaign = "dist-test";
    so.queue.maxAttempts = 1;

    CampaignService service(so);
    service.setKeys(testKeys(kCount));
    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });

    WorkerOptions wo = workerOpts(addr, kCount, "chaos");
    wo.netFaults.seed = 11;
    wo.netFaults.shortWrite = 1.0; // tear every outbound frame
    wo.netFaults.splitRead = 1.0;  // fragment every inbound header
    CampaignWorker w(wo);
    std::string err;
    EXPECT_TRUE(w.run(artifactOf, &err)) << err;
    daemon.join();

    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.count(PointOutcome::Ok), kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(service.results()[i], artifactOf(i));
    EXPECT_GT(w.faultCounters().shortWrites, 0u);
    EXPECT_GT(w.faultCounters().splitReads, 0u);
    EXPECT_TRUE(service.ledger().empty())
        << "torn frames are reassembled, never misread as crashes";
}

} // namespace
} // namespace tb
