/**
 * @file
 * Unit tests for the deterministic fault-injection framework and the
 * thrifty runtime's graceful degradation under it
 * (docs/ROBUSTNESS.md): spec parsing, seed-reproducible replay, the
 * lost-wake-up regression, watchdog rescue of failed timers, and the
 * checker's barrier/sleep liveness watchdogs.
 */

#include <gtest/gtest.h>

#include "check/protocol_checker.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_spec.hh"
#include "harness/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace {

using fault::FaultSpec;
using harness::ConfigKind;
using harness::RunOptions;
using harness::SystemConfig;

// ----------------------------------------------------------------------
// Spec parsing
// ----------------------------------------------------------------------

TEST(FaultSpec, DefaultIsDisabled)
{
    const FaultSpec s;
    EXPECT_FALSE(s.enabled());
    EXPECT_EQ(s.seed, 1u);
}

TEST(FaultSpec, ParsesRatesAndDurations)
{
    const FaultSpec s = FaultSpec::parse(
        "seed=7,drop-wake=0.5,dup-wake=0.25:10us,link-stall=0.1:3us,"
        "timer-drift=2.5");
    EXPECT_TRUE(s.enabled());
    EXPECT_EQ(s.seed, 7u);
    EXPECT_DOUBLE_EQ(s.dropWake, 0.5);
    EXPECT_DOUBLE_EQ(s.dupWake, 0.25);
    EXPECT_EQ(s.dupWakeDelay, 10 * kMicrosecond);
    EXPECT_DOUBLE_EQ(s.linkStall, 0.1);
    EXPECT_EQ(s.linkStallTicks, 3 * kMicrosecond);
    // timer-drift is a lognormal CV, not a probability: > 1 is legal.
    EXPECT_DOUBLE_EQ(s.timerDrift, 2.5);
}

TEST(FaultSpec, AllSetsEveryRate)
{
    const FaultSpec s = FaultSpec::parse("all=0.2");
    EXPECT_DOUBLE_EQ(s.dropWake, 0.2);
    EXPECT_DOUBLE_EQ(s.dupWake, 0.2);
    EXPECT_DOUBLE_EQ(s.delayWake, 0.2);
    EXPECT_DOUBLE_EQ(s.timerFail, 0.2);
    EXPECT_DOUBLE_EQ(s.linkStall, 0.2);
    EXPECT_DOUBLE_EQ(s.msgDelay, 0.2);
    EXPECT_DOUBLE_EQ(s.flushDelay, 0.2);
    EXPECT_DOUBLE_EQ(s.preempt, 0.2);
}

TEST(FaultSpec, RejectsMalformedInput)
{
    EXPECT_THROW(FaultSpec::parse(""), FatalError);
    EXPECT_THROW(FaultSpec::parse("bogus=1"), FatalError);
    EXPECT_THROW(FaultSpec::parse("drop-wake"), FatalError);
    EXPECT_THROW(FaultSpec::parse("drop-wake=1.5"), FatalError);
    EXPECT_THROW(FaultSpec::parse("drop-wake=-0.1"), FatalError);
    EXPECT_THROW(FaultSpec::parse("drop-wake=abc"), FatalError);
    EXPECT_THROW(FaultSpec::parse("drop-wake=0.5x"), FatalError);
    // Rate-only keys take no duration.
    EXPECT_THROW(FaultSpec::parse("drop-wake=0.5:10us"), FatalError);
    EXPECT_THROW(FaultSpec::parse("dup-wake=0.5:10lightyears"),
                 FatalError);
    EXPECT_THROW(FaultSpec::parse("seed=zebra"), FatalError);
}

TEST(FaultSpec, SummaryRoundTrips)
{
    const FaultSpec a = FaultSpec::parse(
        "seed=9,drop-wake=0.3,delay-wake=0.2:7us,preempt=0.05");
    const FaultSpec b = FaultSpec::parse(a.summary());
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(b.seed, 9u);
    EXPECT_DOUBLE_EQ(b.delayWake, 0.2);
    EXPECT_EQ(b.delayWakeDelay, 7 * kMicrosecond);
}

TEST(FaultInjector, IndependentDrawStreamsPerKind)
{
    // Adding an unrelated kind must not reshuffle another kind's
    // draws: hooks with rate 0 never touch the RNG.
    fault::FaultInjector a(FaultSpec::parse("seed=4,drop-wake=0.5"));
    fault::FaultInjector b(
        FaultSpec::parse("seed=4,drop-wake=0.5,link-stall=0"));
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(a.wakeDelivery(0).drop, b.wakeDelivery(0).drop);
        // Rate-0 hooks are exact no-ops.
        EXPECT_EQ(b.linkStall(0, 0), 0u);
    }
}

// ----------------------------------------------------------------------
// End-to-end injection + graceful degradation
// ----------------------------------------------------------------------

workloads::AppProfile
tinyApp()
{
    workloads::AppProfile a;
    a.name = "tiny";
    workloads::PhaseSpec p;
    p.pc = 0x1;
    p.meanCompute = 200 * kMicrosecond;
    p.imbalanceCv = 0.4;
    p.memAccesses = 4;
    a.loop.push_back(p);
    a.iterations = 6;
    return a;
}

TEST(FaultInjection, DeterministicReplay)
{
    SystemConfig sys = SystemConfig::small(2);
    sys.seed = 3;
    const FaultSpec spec = FaultSpec::parse(
        "seed=5,drop-wake=0.4,dup-wake=0.2,delay-wake=0.2,"
        "timer-drift=0.5,timer-fail=0.3,link-stall=0.05,msg-delay=0.05,"
        "flush-delay=0.3,preempt=0.1");
    RunOptions opt;
    opt.check = true;
    opt.faults = &spec;
    opt.livenessBudget = 200 * kMillisecond;

    const auto a = harness::runExperiment(sys, tinyApp(),
                                          ConfigKind::Thrifty, opt);
    const auto b = harness::runExperiment(sys, tinyApp(),
                                          ConfigKind::Thrifty, opt);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.faultCounts, b.faultCounts);
    EXPECT_EQ(a.faultSpec, b.faultSpec);
    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
    EXPECT_EQ(a.sync.watchdogFires, b.sync.watchdogFires);
    EXPECT_EQ(a.sync.quarantines, b.sync.quarantines);
    EXPECT_GT(a.faultsInjected(), 0u);
}

/** Every external wake-up invalidation dropped: the hardened runtime
 *  must still release every barrier (via the safety watchdog), where
 *  the unhardened runtime deadlocks by design. */
TEST(FaultInjection, LostWakeNeverDeadlocks)
{
    SystemConfig sys = SystemConfig::small(2);
    const FaultSpec spec = FaultSpec::parse("seed=2,drop-wake=1.0");

    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
    cfg.wakeup = thrifty::WakeupPolicy::External;
    cfg.hardening.enabled = true;

    RunOptions opt;
    opt.check = true;
    opt.customConfig = &cfg;
    opt.faults = &spec;
    opt.livenessBudget = 200 * kMillisecond;

    const auto r = harness::runExperiment(sys, tinyApp(),
                                          ConfigKind::Thrifty, opt);
    EXPECT_GT(r.sync.sleeps, 0u);
    EXPECT_GT(r.sync.watchdogFires, 0u);
    EXPECT_GT(r.faultsInjected(), 0u);

    // Without the guard rails the same spec never finishes: the run
    // panics (deadlock or liveness violation) instead of hanging.
    thrifty::ThriftyConfig soft = cfg;
    soft.hardening.enabled = false;
    RunOptions bad = opt;
    bad.customConfig = &soft;
    EXPECT_THROW(harness::runExperiment(sys, tinyApp(),
                                        ConfigKind::Thrifty, bad),
                 PanicError);
}

/** Internal wake-up timers that never fire are rescued by the safety
 *  watchdog. */
TEST(FaultInjection, TimerFailureRescuedByWatchdog)
{
    SystemConfig sys = SystemConfig::small(2);
    const FaultSpec spec = FaultSpec::parse("seed=6,timer-fail=1.0");

    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
    cfg.wakeup = thrifty::WakeupPolicy::Internal;
    cfg.hardening.enabled = true;

    RunOptions opt;
    opt.check = true;
    opt.customConfig = &cfg;
    opt.faults = &spec;
    opt.livenessBudget = 200 * kMillisecond;

    const auto r = harness::runExperiment(sys, tinyApp(),
                                          ConfigKind::Thrifty, opt);
    EXPECT_GT(r.sync.sleeps, 0u);
    EXPECT_GT(r.sync.watchdogFires, 0u);
    std::uint64_t timer_fails = 0;
    for (const auto& [kind, n] : r.faultCounts) {
        if (kind == "timer-fail")
            timer_fails = n;
    }
    EXPECT_GT(timer_fails, 0u);
}

/** The cutoff and underprediction filter must keep functioning under
 *  preemption spikes and timer drift: episodes complete and the
 *  mechanism counters stay coherent. */
TEST(FaultInjection, CutoffAndFilterSurviveDriftAndPreemption)
{
    SystemConfig sys = SystemConfig::small(2);
    sys.seed = 5;
    const FaultSpec spec = FaultSpec::parse(
        "seed=8,timer-drift=1.5,preempt=0.5");
    RunOptions opt;
    opt.check = true;
    opt.faults = &spec;
    opt.livenessBudget = 200 * kMillisecond;

    const auto r = harness::runExperiment(sys, tinyApp(),
                                          ConfigKind::Thrifty, opt);
    EXPECT_GT(r.sync.instances, 0u);
    EXPECT_GT(r.faultsInjected(), 0u);
    // Every arrival is accounted exactly once across the mechanisms.
    EXPECT_EQ(r.sync.arrivals,
              static_cast<std::uint64_t>(r.sync.instances) * r.threads);
}

// ----------------------------------------------------------------------
// Quarantine ladder
// ----------------------------------------------------------------------

TEST(Quarantine, EngagesAfterStreakAndBacksOffExponentially)
{
    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
    cfg.hardening.enabled = true;
    cfg.hardening.quarantineThreshold = 3;
    cfg.hardening.quarantineBase = 2;
    thrifty::SyncStats stats;
    thrifty::ThriftyRuntime rt(2, cfg, stats);

    // Two faulty episodes: below the streak threshold.
    rt.noteSleepEpisode(0, 0x1, true);
    rt.noteSleepEpisode(0, 0x1, true);
    EXPECT_FALSE(rt.quarantined(0, 0x1));
    EXPECT_EQ(stats.quarantines, 0u);

    // A clean episode resets the streak.
    rt.noteSleepEpisode(0, 0x1, false);
    rt.noteSleepEpisode(0, 0x1, true);
    rt.noteSleepEpisode(0, 0x1, true);
    EXPECT_FALSE(rt.quarantined(0, 0x1));

    // Third consecutive faulty episode trips the quarantine: base
    // (2) conventional instances before prediction re-enables.
    rt.noteSleepEpisode(0, 0x1, true);
    EXPECT_EQ(stats.quarantines, 1u);
    EXPECT_EQ(rt.quarantinedPairs(), 1u);
    EXPECT_TRUE(rt.quarantined(0, 0x1));
    EXPECT_TRUE(rt.quarantined(0, 0x1));
    EXPECT_FALSE(rt.quarantined(0, 0x1)); // allowance consumed
    EXPECT_EQ(stats.fallbackEpisodes, 2u);

    // Re-offending doubles the penalty (exponential backoff).
    rt.noteSleepEpisode(0, 0x1, true);
    rt.noteSleepEpisode(0, 0x1, true);
    rt.noteSleepEpisode(0, 0x1, true);
    EXPECT_EQ(stats.quarantines, 2u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(rt.quarantined(0, 0x1));
    EXPECT_FALSE(rt.quarantined(0, 0x1));

    // Other pairs are unaffected.
    EXPECT_FALSE(rt.quarantined(1, 0x1));
    EXPECT_FALSE(rt.quarantined(0, 0x2));
}

/** With the cutoff disabled, the quarantine is the active defense
 *  against persistently lost wake-ups: it must engage and the run
 *  must still complete on the conventional fallback path. */
TEST(FaultInjection, QuarantineEngagesEndToEnd)
{
    SystemConfig sys = SystemConfig::small(1);
    const FaultSpec spec = FaultSpec::parse("seed=3,drop-wake=1.0");

    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
    cfg.wakeup = thrifty::WakeupPolicy::External;
    cfg.overpredictionThreshold = -1.0; // cutoff out of the way
    cfg.hardening.enabled = true;

    workloads::AppProfile app = tinyApp();
    app.iterations = 24;

    RunOptions opt;
    opt.check = true;
    opt.customConfig = &cfg;
    opt.faults = &spec;
    opt.livenessBudget = 200 * kMillisecond;

    const auto r = harness::runExperiment(sys, app,
                                          ConfigKind::Thrifty, opt);
    EXPECT_GT(r.sync.watchdogFires, 0u);
    EXPECT_GT(r.sync.quarantines, 0u);
    EXPECT_GT(r.sync.fallbackEpisodes, 0u);
}

// ----------------------------------------------------------------------
// Checker liveness watchdogs (unit level, hooks driven directly)
// ----------------------------------------------------------------------

TEST(CheckerLiveness, ArmedNeverReleasedFailsFinalCheck)
{
    check::CheckerConfig c;
    c.numNodes = 2;
    check::ProtocolChecker ck(c);
    ck.onBarrierArmed(0x400, 0);
    EXPECT_THROW(ck.finalCheck(), PanicError);
}

TEST(CheckerLiveness, ReleasedWithoutArmViolates)
{
    check::CheckerConfig c;
    c.numNodes = 2;
    check::ProtocolChecker ck(c);
    EXPECT_THROW(ck.onBarrierReleased(0x400, 0), PanicError);
}

TEST(CheckerLiveness, DuplicateArmViolates)
{
    check::CheckerConfig c;
    c.numNodes = 2;
    check::ProtocolChecker ck(c);
    ck.onBarrierArmed(0x400, 3);
    EXPECT_THROW(ck.onBarrierArmed(0x400, 3), PanicError);
}

TEST(CheckerLiveness, ReleaseWithinBudgetIsClean)
{
    EventQueue eq;
    check::CheckerConfig c;
    c.numNodes = 2;
    c.barrierBudget = 10 * kMillisecond;
    c.sleepBudget = 10 * kMillisecond;
    check::ProtocolChecker ck(c);
    ck.bindClock(&eq);

    eq.schedule(0, [&]() {
        ck.onBarrierArmed(0x400, 0);
        ck.onSleepEnter(1, false);
    });
    eq.schedule(2 * kMillisecond, [&]() {
        ck.onSleepExit(1);
        ck.onBarrierReleased(0x400, 0);
    });
    eq.run();
    EXPECT_NO_THROW(ck.finalCheck());
}

TEST(CheckerLiveness, ReleaseBeyondBudgetViolates)
{
    EventQueue eq;
    check::CheckerConfig c;
    c.numNodes = 2;
    c.barrierBudget = 1 * kMillisecond;
    check::ProtocolChecker ck(c);
    ck.bindClock(&eq);

    eq.schedule(0, [&]() { ck.onBarrierArmed(0x400, 0); });
    eq.schedule(5 * kMillisecond, [&]() {
        EXPECT_THROW(ck.onBarrierReleased(0x400, 0), PanicError);
    });
    eq.run();
}

TEST(CheckerLiveness, SleepBeyondBudgetViolates)
{
    EventQueue eq;
    check::CheckerConfig c;
    c.numNodes = 2;
    c.sleepBudget = 1 * kMillisecond;
    check::ProtocolChecker ck(c);
    ck.bindClock(&eq);

    eq.schedule(0, [&]() { ck.onSleepEnter(0, false); });
    eq.schedule(5 * kMillisecond, [&]() {
        EXPECT_THROW(ck.onSleepExit(0), PanicError);
    });
    eq.run();
}

TEST(CheckerLiveness, SleeperThatNeverWokeFailsFinalCheck)
{
    check::CheckerConfig c;
    c.numNodes = 2;
    check::ProtocolChecker ck(c);
    ck.onSleepEnter(1, false);
    EXPECT_THROW(ck.finalCheck(), PanicError);
}

} // namespace
} // namespace tb
