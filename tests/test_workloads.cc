/**
 * @file
 * Unit tests for the synthetic workload generators, including the
 * Table 2 imbalance regression on the full 64-node machine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "harness/experiment.hh"
#include "sim/logging.hh"
#include "workloads/app_profile.hh"
#include "workloads/synthetic_program.hh"

namespace tb {
namespace {

using harness::ConfigKind;
using harness::SystemConfig;
using harness::runExperiment;
using workloads::AppProfile;
using workloads::appByName;
using workloads::paperApps;

TEST(AppProfiles, TenAppsInTable2Order)
{
    auto apps = paperApps();
    ASSERT_EQ(apps.size(), 10u);
    // Descending paper imbalance, like Table 2.
    for (std::size_t i = 1; i < apps.size(); ++i)
        EXPECT_GE(apps[i - 1].paperImbalance, apps[i].paperImbalance);
    EXPECT_EQ(apps.front().name, "Volrend");
    EXPECT_EQ(apps.back().name, "Radiosity");
}

TEST(AppProfiles, UniqueBarrierPcsWithinAndAcrossApps)
{
    std::set<thrifty::BarrierPc> pcs;
    for (const auto& a : paperApps()) {
        for (const auto& p : a.prologue)
            EXPECT_TRUE(pcs.insert(p.pc).second) << a.name;
        for (const auto& p : a.loop)
            EXPECT_TRUE(pcs.insert(p.pc).second) << a.name;
    }
}

TEST(AppProfiles, FftAndCholeskyAreNonRepeating)
{
    for (const char* name : {"FFT", "Cholesky"}) {
        AppProfile a = appByName(name);
        EXPECT_TRUE(a.loop.empty()) << name;
        EXPECT_GT(a.prologue.size(), 4u) << name;
        EXPECT_EQ(a.iterations, 0u) << name;
    }
}

TEST(AppProfiles, OceanSwings)
{
    AppProfile a = appByName("Ocean");
    bool any_swing = false;
    for (const auto& p : a.loop)
        any_swing |= p.swingProbability > 0.0;
    EXPECT_TRUE(any_swing);
    EXPECT_GE(a.loop.size(), 4u);
}

TEST(AppProfiles, UnknownNameFatal)
{
    EXPECT_THROW(appByName("Raytrace"), FatalError);
}

TEST(AppProfiles, TargetAppsHaveHighImbalance)
{
    for (const auto& name : workloads::targetAppNames())
        EXPECT_GE(appByName(name).paperImbalance, 0.10);
}

TEST(SyntheticProgram, StepCountMatchesProfile)
{
    harness::SystemConfig sys = SystemConfig::small(2);
    harness::Machine m(sys);
    AppProfile a = appByName("Radiosity");
    thrifty::SyncStats stats;
    harness::ConfigBarrierProvider prov(m, ConfigKind::Baseline,
                                        nullptr, stats);
    workloads::SyntheticProgram prog(m.eventQueue(), m.memory(),
                                     m.threadPtrs(), a, prov, 1);
    EXPECT_EQ(prog.totalSteps(), a.totalInstances());
}

TEST(SyntheticProgram, IdenticalSeedsIdenticalPrograms)
{
    // The same (seed, app) must produce the same execution under the
    // same configuration — the cross-configuration comparison depends
    // on workload determinism.
    harness::SystemConfig sys = SystemConfig::small(2);
    sys.seed = 77;
    AppProfile a = appByName("Radiosity");
    a.iterations = 3;
    auto r1 = runExperiment(sys, a, ConfigKind::Baseline);
    auto r2 = runExperiment(sys, a, ConfigKind::Baseline);
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_DOUBLE_EQ(r1.sync.totalStallTicks, r2.sync.totalStallTicks);
}

TEST(SyntheticProgram, DifferentSeedsDiffer)
{
    harness::SystemConfig sys = SystemConfig::small(2);
    AppProfile a = appByName("Radiosity");
    a.iterations = 3;
    sys.seed = 1;
    auto r1 = runExperiment(sys, a, ConfigKind::Baseline);
    sys.seed = 2;
    auto r2 = runExperiment(sys, a, ConfigKind::Baseline);
    EXPECT_NE(r1.execTime, r2.execTime);
}

/**
 * Table 2 regression: measured Baseline imbalance on the paper's
 * 64-node machine must land near the published value for every app.
 */
class Table2Regression
    : public ::testing::TestWithParam<std::pair<const char*, double>>
{};

TEST_P(Table2Regression, ImbalanceNearPaper)
{
    const auto& [name, tolerance_pp] = GetParam();
    SystemConfig sys = SystemConfig::paperDefault();
    AppProfile app = appByName(name);
    auto r = runExperiment(sys, app, ConfigKind::Baseline);
    EXPECT_NEAR(100.0 * r.imbalance(), 100.0 * app.paperImbalance,
                tolerance_pp)
        << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, Table2Regression,
    ::testing::Values(
        // (app, tolerance in percentage points). The near-balanced
        // apps carry a floor from check-in serialization that the
        // paper's testbed also has but in different magnitude.
        std::make_pair("Volrend", 2.5), std::make_pair("Radix", 2.0),
        std::make_pair("FMM", 2.0), std::make_pair("Barnes", 2.0),
        std::make_pair("Water-Nsq", 2.0),
        std::make_pair("Water-Sp", 2.0), std::make_pair("Ocean", 2.0),
        std::make_pair("FFT", 1.5), std::make_pair("Cholesky", 1.5),
        std::make_pair("Radiosity", 1.5)),
    [](const auto& info) {
        std::string n = info.param.first;
        for (auto& c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST(Workloads, ImbalanceOrderingPreserved)
{
    // The measured ordering must match Table 2's ordering for the
    // well-separated apps.
    SystemConfig sys = SystemConfig::paperDefault();
    double volrend = 0, radix = 0, ocean = 0, radiosity = 0;
    for (const auto& [name, out] :
         std::initializer_list<std::pair<const char*, double*>>{
             {"Volrend", &volrend},
             {"Radix", &radix},
             {"Ocean", &ocean},
             {"Radiosity", &radiosity}}) {
        auto r =
            runExperiment(sys, appByName(name), ConfigKind::Baseline);
        *out = r.imbalance();
    }
    EXPECT_GT(volrend, radix);
    EXPECT_GT(radix, ocean);
    EXPECT_GT(ocean, radiosity);
}

} // namespace
} // namespace tb
