/**
 * @file
 * Event-pool storage tests: slab reuse under cancel-heavy churn,
 * closure lifetime accounting for both inline and heap-allocated
 * captures, and the schedule/execute/cancel/drop observer balance
 * (docs/PERFORMANCE.md).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace tb {
namespace {

/** Counts every construction and destruction of its instances. */
struct LifeTracker
{
    static int live;
    static int destroyed;

    LifeTracker() { ++live; }
    LifeTracker(const LifeTracker&) { ++live; }
    LifeTracker(LifeTracker&&) noexcept { ++live; }
    ~LifeTracker()
    {
        --live;
        ++destroyed;
    }

    static void
    reset()
    {
        live = 0;
        destroyed = 0;
    }
};

int LifeTracker::live = 0;
int LifeTracker::destroyed = 0;

/** Tallies every observer hook; the balance invariant is
 *  schedules == executes + drops and cancels == drops at drain. */
struct CountingObserver : EventQueueObserver
{
    std::uint64_t schedules = 0;
    std::uint64_t executes = 0;
    std::uint64_t cancels = 0;
    std::uint64_t drops = 0;

    void
    onSchedule(Tick, int, std::uint64_t, Tick) override
    {
        ++schedules;
    }
    void onExecute(Tick, int, std::uint64_t) override { ++executes; }
    void onCancel(Tick, std::uint64_t) override { ++cancels; }
    void onDropDead(Tick, std::uint64_t) override { ++drops; }
};

TEST(EventPool, CancelHeavyChurnReusesSlots)
{
    EventQueue eq;

    // Warm up one slab's worth of capacity.
    eq.schedule(1, [] {});
    eq.run();
    const std::size_t warm = eq.poolCapacity();

    // Thousands of rounds of schedule/cancel/fire churn with at most
    // `batch` events outstanding: the free list must recycle slots, so
    // capacity stays at the warm-up level instead of tracking the
    // cumulative event count.
    const unsigned batch = 100;
    std::uint64_t fired = 0;
    std::vector<EventHandle> handles;
    for (unsigned round = 0; round < 2000; ++round) {
        handles.clear();
        const Tick base = eq.now();
        for (unsigned i = 0; i < batch; ++i) {
            handles.push_back(
                eq.schedule(base + 1 + i % 17, [&fired] { ++fired; }));
        }
        for (unsigned i = 0; i < batch; i += 2)
            handles[i].cancel();
        eq.run();
    }

    EXPECT_EQ(eq.poolCapacity(), warm);
    EXPECT_EQ(fired, 2000ull * batch / 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventPool, PoolGrowsBySlabAndHandlesStayValid)
{
    EventQueue eq;
    const unsigned n = 600; // > two slabs of 256
    std::vector<EventHandle> handles;
    std::uint64_t fired = 0;
    for (unsigned i = 0; i < n; ++i)
        handles.push_back(eq.schedule(i + 1, [&fired] { ++fired; }));

    EXPECT_GE(eq.poolCapacity(), n);
    EXPECT_EQ(eq.poolCapacity() % 256, 0u);

    // Handles created before pool growth still see their events.
    for (unsigned i = 0; i < n; ++i) {
        EXPECT_TRUE(handles[i].scheduled());
        EXPECT_EQ(handles[i].when(), Tick{i + 1});
    }

    eq.run();
    EXPECT_EQ(fired, n);
    for (auto& h : handles)
        EXPECT_FALSE(h.scheduled());
}

TEST(EventPool, InlineClosureDestroyedExactlyOnceOnFire)
{
    LifeTracker::reset();
    {
        EventQueue eq;
        int runs = 0;
        {
            LifeTracker t;
            eq.schedule(1, [t, &runs] { ++runs; });
        }
        EXPECT_EQ(LifeTracker::live, 1); // capture alive in the slot
        eq.run();
        EXPECT_EQ(runs, 1);
        EXPECT_EQ(LifeTracker::live, 0); // destroyed by the fire path
    }
    EXPECT_EQ(LifeTracker::live, 0);
}

TEST(EventPool, HeapClosureDestroyedExactlyOnceOnFire)
{
    LifeTracker::reset();
    {
        EventQueue eq;
        int runs = 0;
        {
            LifeTracker t;
            // Pad the capture past the inline buffer to force the
            // heap-allocated closure path.
            std::array<char, EventQueue::kInlineClosureBytes + 8> pad{};
            eq.schedule(1, [t, pad, &runs] {
                ++runs;
                (void)pad;
            });
        }
        EXPECT_EQ(LifeTracker::live, 1);
        eq.run();
        EXPECT_EQ(runs, 1);
        EXPECT_EQ(LifeTracker::live, 0);
    }
    EXPECT_EQ(LifeTracker::live, 0);
}

TEST(EventPool, CanceledClosureDestroyedImmediately)
{
    LifeTracker::reset();
    EventQueue eq;
    {
        LifeTracker t;
        EventHandle h = eq.schedule(5, [t] {});
        EXPECT_EQ(LifeTracker::live, 2); // local t + slot capture
        h.cancel();
        // Cancelation is lazy for the *heap entry*, but the capture is
        // released right away so canceled events pin no resources.
        EXPECT_EQ(LifeTracker::live, 1); // only local t left
        h.cancel();                      // repeat-cancel is a no-op
        EXPECT_EQ(LifeTracker::live, 1);
    }
    eq.run();
    EXPECT_EQ(LifeTracker::live, 0);
}

TEST(EventPool, PendingClosuresDestroyedWithQueue)
{
    LifeTracker::reset();
    {
        EventQueue eq;
        for (unsigned i = 0; i < 300; ++i) { // spans two slabs
            LifeTracker t;
            eq.schedule(i + 1, [t] { FAIL() << "must never fire"; });
        }
        EXPECT_EQ(LifeTracker::live, 300);
    }
    EXPECT_EQ(LifeTracker::live, 0);
}

TEST(EventPool, StaleHandleIsInertAfterSlotReuse)
{
    EventQueue eq;
    int first = 0, second = 0;
    EventHandle h = eq.schedule(1, [&first] { ++first; });
    eq.run();
    EXPECT_EQ(first, 1);
    EXPECT_FALSE(h.scheduled());

    // The slot is recycled for the next event; the stale handle must
    // not observe or cancel it.
    EventHandle h2 = eq.schedule(2, [&second] { ++second; });
    h.cancel();
    EXPECT_EQ(h.when(), kTickNever);
    EXPECT_TRUE(h2.scheduled());
    eq.run();
    EXPECT_EQ(second, 1);
}

TEST(EventPool, SelfReschedulingCallbackIsSafe)
{
    EventQueue eq;
    unsigned hops = 0;
    std::function<void()> hop = [&] {
        if (++hops < 100)
            eq.scheduleIn(1, [&] { hop(); });
    };
    eq.schedule(1, [&] { hop(); });
    eq.run();
    EXPECT_EQ(hops, 100u);
    EXPECT_EQ(eq.poolCapacity(), 256u); // one slot reused throughout
}

TEST(EventPool, ObserverAccountingBalancedUnderCancelChurn)
{
    EventQueue eq;
    CountingObserver obs;
    eq.setObserver(&obs);

    std::vector<EventHandle> handles;
    for (unsigned round = 0; round < 50; ++round) {
        handles.clear();
        const Tick base = eq.now();
        for (unsigned i = 0; i < 64; ++i)
            handles.push_back(eq.schedule(base + 1 + i % 7, [] {}));
        for (unsigned i = 0; i < 64; i += 3)
            handles[i].cancel();
        eq.run();

        // At drain every schedule was either executed or (canceled and
        // then) dropped — never both, never neither.
        EXPECT_EQ(obs.schedules, obs.executes + obs.drops);
        EXPECT_EQ(obs.cancels, obs.drops);
    }
    EXPECT_GT(obs.cancels, 0u);
    EXPECT_EQ(obs.schedules, 50u * 64u);
}

TEST(EventPool, InlineCapacityMatchesAdvertisedBound)
{
    struct Small
    {
        char data[EventQueue::kInlineClosureBytes];
        void operator()() {}
    };
    struct Big
    {
        char data[EventQueue::kInlineClosureBytes + 1];
        void operator()() {}
    };
    EXPECT_TRUE(detail::EventClosure::fitsInline<Small>());
    EXPECT_FALSE(detail::EventClosure::fitsInline<Big>());
}

} // namespace
} // namespace tb
