/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(1); }, 1);
    eq.schedule(5, [&]() { order.push_back(0); }, 0);
    eq.schedule(5, [&]() { order.push_back(2); }, 1);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, []() {}), PanicError);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1, EventQueue::Callback{}), PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventHandle h = eq.schedule(10, [&]() { ran = true; });
    EXPECT_TRUE(h.scheduled());
    h.cancel();
    EXPECT_FALSE(h.scheduled());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, CancelUpdatesPendingCount)
{
    EventQueue eq;
    EventHandle a = eq.schedule(10, []() {});
    EventHandle b = eq.schedule(20, []() {});
    EXPECT_EQ(eq.pending(), 2u);
    a.cancel();
    EXPECT_EQ(eq.pending(), 1u);
    a.cancel(); // double-cancel is a no-op
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    (void)b;
}

TEST(EventQueue, CancelAfterFireIsNoOp)
{
    EventQueue eq;
    int count = 0;
    EventHandle h = eq.schedule(10, [&]() { ++count; });
    eq.run();
    EXPECT_FALSE(h.scheduled());
    h.cancel();
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, RunUntilBound)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&]() { ++count; });
    eq.schedule(20, [&]() { ++count; });
    eq.schedule(30, [&]() { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, SelfReschedulingCallback)
{
    EventQueue eq;
    int fires = 0;
    std::function<void()> tick = [&]() {
        if (++fires < 5)
            eq.scheduleIn(10, tick);
    };
    eq.scheduleIn(10, tick);
    eq.run();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, ScheduleInOffsetsFromNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleIn(25, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.scheduled());
    EXPECT_EQ(h.when(), kTickNever);
    h.cancel(); // must not crash
}

TEST(EventQueue, HandleReportsScheduledTick)
{
    EventQueue eq;
    EventHandle h = eq.schedule(42, []() {});
    EXPECT_EQ(h.when(), 42u);
    eq.run();
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 999; i >= 0; --i) {
        eq.schedule(static_cast<Tick>(i * 7 % 501), [&, i]() {
            if (eq.now() < last)
                monotone = false;
            last = eq.now();
            (void)i;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.eventsExecuted(), 1000u);
}

// ----------------------------------------------------------------------
// Cancelation-race regressions. The thrifty barrier's hybrid wake-up
// relies on exactly these semantics: two wake events race at the same
// tick and whichever fires first must disarm the other.
// ----------------------------------------------------------------------

TEST(EventQueueCancelRace, CancelAndRescheduleSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&]() { order.push_back(0); });
    EventHandle h = eq.schedule(50, [&]() { order.push_back(1); });
    h.cancel();
    // The replacement lands at the same tick but serializes after
    // every event scheduled in between.
    eq.schedule(50, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
    EXPECT_EQ(eq.eventsExecuted(), 2u);
}

TEST(EventQueueCancelRace, MutualCancelExactlyOneFires)
{
    // External-vs-internal wake-up: both triggers arm an event for
    // the same tick; the first to execute disarms the other.
    EventQueue eq;
    int external = 0;
    int internal = 0;
    EventHandle ext, timer;
    ext = eq.schedule(100, [&]() {
        ++external;
        timer.cancel();
    });
    timer = eq.schedule(100, [&]() {
        ++internal;
        ext.cancel();
    });
    eq.run();
    // Determinism: insertion order breaks the tie, so the external
    // trigger (scheduled first) wins every time.
    EXPECT_EQ(external, 1);
    EXPECT_EQ(internal, 0);
    EXPECT_EQ(external + internal, 1);
}

TEST(EventQueueCancelRace, CancelLaterEventFromSameTick)
{
    EventQueue eq;
    bool victim_ran = false;
    EventHandle victim =
        eq.schedule(10, [&]() { victim_ran = true; }, 1);
    // Higher-priority event at the same tick runs first and cancels
    // the lower-priority one before the queue reaches it.
    eq.schedule(10, [&]() { victim.cancel(); }, 0);
    eq.run();
    EXPECT_FALSE(victim_ran);
}

TEST(EventQueueCancelRace, RescheduleFromOwnCallback)
{
    // A handle may be re-armed for the current tick from within its
    // own callback (the wake-timer re-arm pattern).
    EventQueue eq;
    int fires = 0;
    EventHandle h;
    h = eq.schedule(10, [&]() {
        if (++fires == 1)
            h = eq.schedule(10, [&]() { ++fires; });
    });
    eq.run();
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueueCancelRace, DeterministicTickPrioritySeqOrder)
{
    // Full (tick, priority, seq) ordering with a cancelation punched
    // into the middle: survivors keep their deterministic slots.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&]() { order.push_back(3); }, 0);
    eq.schedule(10, [&]() { order.push_back(1); }, 1);
    EventHandle dropped =
        eq.schedule(10, [&]() { order.push_back(99); }, 1);
    eq.schedule(10, [&]() { order.push_back(2); }, 1);
    eq.schedule(10, [&]() { order.push_back(0); }, 0);
    dropped.cancel();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueCancelRace, CancelIsIdempotentAcrossReschedule)
{
    EventQueue eq;
    bool first_ran = false;
    bool second_ran = false;
    EventHandle h = eq.schedule(10, [&]() { first_ran = true; });
    h.cancel();
    h.cancel();
    // Re-point the handle at a new event; stale cancels above must
    // not affect it.
    h = eq.schedule(10, [&]() { second_ran = true; });
    eq.run();
    EXPECT_FALSE(first_ran);
    EXPECT_TRUE(second_ran);
}

} // namespace
} // namespace tb
