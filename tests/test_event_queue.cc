/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&]() { order.push_back(1); }, 1);
    eq.schedule(5, [&]() { order.push_back(0); }, 0);
    eq.schedule(5, [&]() { order.push_back(2); }, 1);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, []() {}), PanicError);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1, EventQueue::Callback{}), PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventHandle h = eq.schedule(10, [&]() { ran = true; });
    EXPECT_TRUE(h.scheduled());
    h.cancel();
    EXPECT_FALSE(h.scheduled());
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, CancelUpdatesPendingCount)
{
    EventQueue eq;
    EventHandle a = eq.schedule(10, []() {});
    EventHandle b = eq.schedule(20, []() {});
    EXPECT_EQ(eq.pending(), 2u);
    a.cancel();
    EXPECT_EQ(eq.pending(), 1u);
    a.cancel(); // double-cancel is a no-op
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    (void)b;
}

TEST(EventQueue, CancelAfterFireIsNoOp)
{
    EventQueue eq;
    int count = 0;
    EventHandle h = eq.schedule(10, [&]() { ++count; });
    eq.run();
    EXPECT_FALSE(h.scheduled());
    h.cancel();
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, RunUntilBound)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&]() { ++count; });
    eq.schedule(20, [&]() { ++count; });
    eq.schedule(30, [&]() { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, SelfReschedulingCallback)
{
    EventQueue eq;
    int fires = 0;
    std::function<void()> tick = [&]() {
        if (++fires < 5)
            eq.scheduleIn(10, tick);
    };
    eq.scheduleIn(10, tick);
    eq.run();
    EXPECT_EQ(fires, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, ScheduleInOffsetsFromNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleIn(25, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 125u);
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.scheduled());
    EXPECT_EQ(h.when(), kTickNever);
    h.cancel(); // must not crash
}

TEST(EventQueue, HandleReportsScheduledTick)
{
    EventQueue eq;
    EventHandle h = eq.schedule(42, []() {});
    EXPECT_EQ(h.when(), 42u);
    eq.run();
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 999; i >= 0; --i) {
        eq.schedule(static_cast<Tick>(i * 7 % 501), [&, i]() {
            if (eq.now() < last)
                monotone = false;
            last = eq.now();
            (void)i;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.eventsExecuted(), 1000u);
}

} // namespace
} // namespace tb
