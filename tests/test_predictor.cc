/**
 * @file
 * Unit tests for the BIT predictors.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "thrifty/bit_predictor.hh"

namespace tb {
namespace {

using thrifty::LastValuePredictor;
using thrifty::MovingAveragePredictor;
using thrifty::makePredictor;

TEST(LastValue, NoHistoryNoPrediction)
{
    LastValuePredictor p;
    EXPECT_FALSE(p.predict(0x100, 0).has_value());
    EXPECT_FALSE(p.stored(0x100).has_value());
}

TEST(LastValue, PredictsLastSample)
{
    LastValuePredictor p;
    p.update(0x100, 500);
    EXPECT_EQ(p.predict(0x100, 3).value(), 500u);
    p.update(0x100, 800);
    EXPECT_EQ(p.predict(0x100, 3).value(), 800u);
    EXPECT_EQ(p.stored(0x100).value(), 800u);
}

TEST(LastValue, PcIndexedIndependence)
{
    LastValuePredictor p;
    p.update(0x100, 500);
    p.update(0x200, 900);
    EXPECT_EQ(p.predict(0x100, 0).value(), 500u);
    EXPECT_EQ(p.predict(0x200, 0).value(), 900u);
    EXPECT_FALSE(p.predict(0x300, 0).has_value());
}

TEST(LastValue, DisableBitIsPerThreadPerPc)
{
    LastValuePredictor p;
    p.update(0x100, 500);
    p.update(0x200, 700);
    p.disable(0x100, 5);
    EXPECT_TRUE(p.disabled(0x100, 5));
    EXPECT_FALSE(p.disabled(0x100, 6));
    EXPECT_FALSE(p.disabled(0x200, 5));
    EXPECT_FALSE(p.predict(0x100, 5).has_value());
    EXPECT_TRUE(p.predict(0x100, 6).has_value());
    EXPECT_TRUE(p.predict(0x200, 5).has_value());
}

TEST(LastValue, DisablePersistsAcrossUpdates)
{
    LastValuePredictor p;
    p.update(0x100, 500);
    p.disable(0x100, 2);
    p.update(0x100, 900);
    EXPECT_FALSE(p.predict(0x100, 2).has_value());
}

TEST(LastValue, ThreadIdBeyond64Fatal)
{
    LastValuePredictor p;
    p.update(0x100, 500);
    EXPECT_THROW(p.predict(0x100, 64), FatalError);
    EXPECT_THROW(p.disable(0x100, 64), FatalError);
}

TEST(MovingAverage, FirstSampleSeeds)
{
    MovingAveragePredictor p(0.5);
    p.update(0x1, 1000);
    EXPECT_EQ(p.predict(0x1, 0).value(), 1000u);
}

TEST(MovingAverage, ConvergesToward)
{
    MovingAveragePredictor p(0.5);
    p.update(0x1, 1000);
    p.update(0x1, 2000);
    EXPECT_EQ(p.predict(0x1, 0).value(), 1500u);
    p.update(0x1, 2000);
    EXPECT_EQ(p.predict(0x1, 0).value(), 1750u);
}

TEST(MovingAverage, SmootherThanLastValueOnSwing)
{
    MovingAveragePredictor ma(0.5);
    LastValuePredictor lv;
    for (Tick v : {1000u, 1000u, 6000u}) {
        ma.update(0x1, v);
        lv.update(0x1, v);
    }
    // After a 6x swing, the EWMA reacts only partially.
    EXPECT_LT(ma.predict(0x1, 0).value(), lv.predict(0x1, 0).value());
}

TEST(MovingAverage, BadAlphaFatal)
{
    EXPECT_THROW(MovingAveragePredictor(0.0), FatalError);
    EXPECT_THROW(MovingAveragePredictor(1.5), FatalError);
}

TEST(Factory, MakesKnownKinds)
{
    EXPECT_EQ(makePredictor("last-value")->name(), "last-value");
    EXPECT_EQ(makePredictor("moving-average")->name(),
              "moving-average");
    EXPECT_THROW(makePredictor("nonsense"), FatalError);
}

} // namespace
} // namespace tb
