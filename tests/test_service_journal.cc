/**
 * @file
 * ServiceJournal tests (docs/ROBUSTNESS.md, "Daemon crash recovery"):
 * record/replay round trips of the daemon's scheduling state,
 * idempotent replay under duplicated lines, torn-final-line
 * tolerance, attempt counts as maxima, outstanding-lease detection,
 * and the fatal conflicting-campaign-identity path.
 */

#include "svc/service_journal.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign_journal.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace tb {
namespace {

using svc::ServiceJournal;

std::string
tempPath(const std::string& name)
{
    const std::string p = testing::TempDir() + "tb_svcj_" + name;
    std::remove(p.c_str());
    return p;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(ServiceJournal, RecordThenResumeReconstructsState)
{
    const std::string path = tempPath("roundtrip.jsonl");
    {
        ServiceJournal j;
        j.open(path, /*resume=*/false);
        ASSERT_TRUE(j.active());
        j.recordCampaign(0xfeed, 4);
        // Point 0: leased, lost once, re-leased — daemon dies with the
        // lease outstanding on attempt 2.
        j.recordLease(0, 1, "w1");
        j.recordLoss(0, 1, "disconnect");
        j.recordLease(0, 2, "w2");
        // Point 1: leased and completed — nothing to recover.
        j.recordLease(1, 1, "w1");
        j.recordDone(1);
        // Point 2: lost and not yet re-leased — pending with backoff.
        j.recordLease(2, 1, "w2 \"quoted\"");
        j.recordLoss(2, 1, "heartbeat-timeout");
    }
    ServiceJournal j;
    j.open(path, /*resume=*/true);
    EXPECT_TRUE(j.hasCampaign());
    EXPECT_EQ(j.fingerprint(), 0xfeedu);
    EXPECT_EQ(j.count(), 4u);
    EXPECT_GT(j.loaded(), 0u);

    const auto& rec = j.recovered();
    ASSERT_EQ(rec.count(0), 1u);
    EXPECT_EQ(rec.at(0).attempts, 2u);
    EXPECT_TRUE(rec.at(0).outstanding);
    EXPECT_EQ(rec.at(0).lastReason, "disconnect");
    EXPECT_EQ(rec.count(1), 0u) << "completed points never recover";
    ASSERT_EQ(rec.count(2), 1u);
    EXPECT_EQ(rec.at(2).attempts, 1u);
    EXPECT_FALSE(rec.at(2).outstanding);
    EXPECT_EQ(rec.at(2).lastReason, "heartbeat-timeout");
    EXPECT_EQ(rec.count(3), 0u) << "untouched points never recover";
    std::remove(path.c_str());
}

TEST(ServiceJournal, OpenWithoutResumeTruncates)
{
    const std::string path = tempPath("truncate.jsonl");
    {
        ServiceJournal j;
        j.open(path, false);
        j.recordCampaign(0x1, 1);
        j.recordLease(0, 1, "w");
    }
    ServiceJournal j;
    j.open(path, /*resume=*/false);
    EXPECT_EQ(j.loaded(), 0u);
    EXPECT_FALSE(j.hasCampaign());
    EXPECT_TRUE(j.recovered().empty());
    std::remove(path.c_str());
}

TEST(ServiceJournal, DuplicatedLinesReplayIdempotently)
{
    // Doubling the whole file (crash between fflush and exit, journal
    // concatenation) must change nothing: attempts are maxima, not
    // line counts, and outstanding-ness follows the last event.
    const std::string path = tempPath("dup.jsonl");
    {
        ServiceJournal j;
        j.open(path, false);
        j.recordCampaign(0xabc, 2);
        j.recordLease(0, 1, "w1");
        j.recordLoss(0, 1, "disconnect");
    }
    const std::string once = slurp(path);
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << once;
    }
    ServiceJournal j;
    j.open(path, /*resume=*/true);
    EXPECT_EQ(j.fingerprint(), 0xabcu);
    ASSERT_EQ(j.recovered().count(0), 1u);
    EXPECT_EQ(j.recovered().at(0).attempts, 1u);
    EXPECT_FALSE(j.recovered().at(0).outstanding);
    std::remove(path.c_str());
}

TEST(ServiceJournal, TornFinalLineFuzzNeverResurrects)
{
    // Kill the writer at every possible byte of the final record: the
    // intact prefix must replay, the torn tail must be skipped, and
    // open() must never crash.
    const std::string path = tempPath("torn_fuzz.jsonl");
    std::string full;
    {
        ServiceJournal j;
        j.open(path, false);
        j.recordCampaign(0x77, 2);
        j.recordLease(0, 1, "w1");
        j.recordLease(1, 1, "name with \"quotes\" and \\slash");
        full = slurp(path);
    }
    const std::size_t second_nl =
        full.find('\n', full.find('\n') + 1);
    ASSERT_NE(second_nl, std::string::npos);
    for (std::size_t cut = second_nl + 1; cut < full.size(); ++cut) {
        harness::writeFileAtomic(path, full.substr(0, cut));
        ServiceJournal j;
        j.open(path, /*resume=*/true);
        EXPECT_TRUE(j.hasCampaign()) << "cut at " << cut;
        ASSERT_EQ(j.recovered().count(0), 1u) << "cut at " << cut;
        EXPECT_TRUE(j.recovered().at(0).outstanding);
        if (cut < full.size() - 1) {
            EXPECT_EQ(j.recovered().count(1), 0u)
                << "torn line resurrected at cut " << cut;
        }
    }
    std::remove(path.c_str());
}

TEST(ServiceJournal, CorruptedLineIsSkipped)
{
    // A line whose seal no longer matches its body (bit rot, manual
    // edit) is skipped like a torn line, not trusted.
    const std::string path = tempPath("corrupt.jsonl");
    {
        ServiceJournal j;
        j.open(path, false);
        j.recordCampaign(0x5, 2);
        j.recordLease(0, 1, "w1");
        j.recordLease(1, 3, "w2");
    }
    std::string full = slurp(path);
    const auto at = full.find("\"point\": 1");
    ASSERT_NE(at, std::string::npos);
    full.replace(at, 10, "\"point\": 0");
    harness::writeFileAtomic(path, full);
    ServiceJournal j;
    j.open(path, /*resume=*/true);
    ASSERT_EQ(j.recovered().count(0), 1u);
    EXPECT_EQ(j.recovered().at(0).attempts, 1u)
        << "forged attempt count must not load";
    EXPECT_EQ(j.recovered().count(1), 0u);
    std::remove(path.c_str());
}

TEST(ServiceJournal, ConflictingCampaignIdentityIsFatal)
{
    const std::string path = tempPath("conflict.jsonl");
    {
        ServiceJournal j;
        j.open(path, false);
        j.recordCampaign(0x1111, 8);
    }
    {
        // Same campaign re-recorded across a resume: tolerated.
        ServiceJournal j;
        j.open(path, /*resume=*/true);
        j.recordCampaign(0x1111, 8);
    }
    {
        // A different campaign writing into a resumed journal: fatal
        // at the record call.
        ServiceJournal j;
        j.open(path, /*resume=*/true);
        EXPECT_THROW(j.recordCampaign(0x2222, 8), FatalError);
    }
    {
        // Two different campaign records already on disk: fatal at
        // open(resume).
        const std::string other = tempPath("conflict_other.jsonl");
        ServiceJournal j2;
        j2.open(other, false);
        j2.recordCampaign(0x2222, 8);
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << slurp(other);
        out.close();
        std::remove(other.c_str());
        ServiceJournal j;
        EXPECT_THROW(j.open(path, /*resume=*/true), FatalError);
    }
    std::remove(path.c_str());
}

TEST(ServiceJournal, RandomInterleavingFuzz)
{
    // Seeded chaos: random event streams over 6 points, duplicated
    // blocks, torn tail. Replay must agree with a straightforward
    // in-memory model of the same events.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        tb::Random rng(seed);
        const std::string path = tempPath("interleave_fuzz.jsonl");
        struct Model
        {
            unsigned attempts = 0;
            bool outstanding = false;
            bool done = false;
        };
        std::vector<Model> model(6);
        std::vector<std::string> lines;
        {
            ServiceJournal j;
            j.open(path, false);
            j.recordCampaign(0x9000 + seed, 6);
            for (int ev = 0; ev < 40; ++ev) {
                const std::size_t p =
                    static_cast<std::size_t>(rng.uniformInt(6));
                Model& m = model[p];
                if (m.done)
                    continue;
                if (!m.outstanding) {
                    ++m.attempts;
                    m.outstanding = true;
                    j.recordLease(p, m.attempts, "w");
                } else if (rng.chance(0.5)) {
                    m.outstanding = false;
                    j.recordLoss(p, m.attempts, "disconnect");
                } else {
                    m.outstanding = false;
                    m.done = true;
                    j.recordDone(p);
                }
            }
        }
        {
            std::istringstream in(slurp(path));
            for (std::string l; std::getline(in, l);)
                lines.push_back(l);
            // Duplicate a random block, then tear a random line's
            // prefix onto the tail.
            std::ofstream out(path,
                              std::ios::app | std::ios::binary);
            for (int k = 0; k < 5; ++k)
                out << lines[rng.uniformInt(lines.size())] << "\n";
            const std::string& torn =
                lines[rng.uniformInt(lines.size())];
            out << torn.substr(0, 1 + rng.uniformInt(torn.size() - 1));
        }
        ServiceJournal j;
        j.open(path, /*resume=*/true);
        EXPECT_EQ(j.fingerprint(), 0x9000 + seed);
        for (std::size_t p = 0; p < 6; ++p) {
            const Model& m = model[p];
            if (m.attempts == 0) {
                EXPECT_EQ(j.recovered().count(p), 0u)
                    << "seed " << seed << " point " << p;
                continue;
            }
            if (m.done) {
                // A duplicated lease line appended after the done can
                // re-create the entry; that is harmless (recovery only
                // touches points the completion journal left Pending)
                // but the forged attempt count must stay bounded.
                if (j.recovered().count(p)) {
                    EXPECT_LE(j.recovered().at(p).attempts,
                              m.attempts)
                        << "seed " << seed << " point " << p;
                }
                continue;
            }
            // A duplicated lease line can legitimately flip a point
            // back to outstanding (last-event-wins over the appended
            // block), so only assert the attempt maximum, which no
            // interleaving may change.
            ASSERT_EQ(j.recovered().count(p), 1u)
                << "seed " << seed << " point " << p;
            EXPECT_EQ(j.recovered().at(p).attempts, m.attempts)
                << "seed " << seed << " point " << p;
        }
        std::remove(path.c_str());
    }
}

} // namespace
} // namespace tb
