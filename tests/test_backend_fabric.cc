/**
 * @file
 * Unit tests for the memory value backend, the coherence message
 * vocabulary, and the fabric routing layer.
 */

#include <gtest/gtest.h>

#include "mem/backend.hh"
#include "mem/fabric.hh"
#include "mem/mem_types.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using mem::Backend;
using mem::Msg;
using mem::MsgType;

TEST(Backend, ZeroInitialized)
{
    Backend b;
    EXPECT_EQ(b.read(0x1000), 0u);
    EXPECT_EQ(b.footprint(), 0u);
}

TEST(Backend, WriteReadRoundTrip)
{
    Backend b;
    b.write(0x1000, 42);
    b.write(0x1008, 43);
    EXPECT_EQ(b.read(0x1000), 42u);
    EXPECT_EQ(b.read(0x1008), 43u);
    EXPECT_EQ(b.footprint(), 2u);
}

TEST(Backend, FetchAddReturnsOld)
{
    Backend b;
    EXPECT_EQ(b.fetchAdd(0x40, 5), 0u);
    EXPECT_EQ(b.fetchAdd(0x40, 3), 5u);
    EXPECT_EQ(b.read(0x40), 8u);
}

TEST(MemTypes, LineAndPageAlignment)
{
    EXPECT_EQ(mem::lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(mem::lineAddr(0x12340), 0x12340u);
    EXPECT_EQ(mem::pageAddr(0x12345), 0x12000u);
}

TEST(MemTypes, MessageSizes)
{
    Msg m;
    for (MsgType t : {MsgType::GetS, MsgType::GetX, MsgType::Upgrade,
                      MsgType::AtomicRmw, MsgType::Inv,
                      MsgType::InvAck, MsgType::UpgradeAck,
                      MsgType::RmwResult, MsgType::WbAck,
                      MsgType::FwdGetS, MsgType::FwdGetX,
                      MsgType::OwnerStale}) {
        m.type = t;
        EXPECT_EQ(m.bytes(), mem::kCtrlBytes) << mem::msgTypeName(t);
    }
    for (MsgType t : {MsgType::PutM, MsgType::OwnerData,
                      MsgType::DataShared, MsgType::DataExclusive,
                      MsgType::DataModified}) {
        m.type = t;
        EXPECT_EQ(m.bytes(), mem::kDataBytes) << mem::msgTypeName(t);
    }
}

TEST(MemTypes, NamesAreStable)
{
    EXPECT_STREQ(mem::lineStateName(mem::LineState::Invalid), "I");
    EXPECT_STREQ(mem::lineStateName(mem::LineState::Shared), "S");
    EXPECT_STREQ(mem::lineStateName(mem::LineState::Exclusive), "E");
    EXPECT_STREQ(mem::lineStateName(mem::LineState::Modified), "M");
    EXPECT_STREQ(mem::msgTypeName(MsgType::GetS), "GetS");
    EXPECT_STREQ(mem::msgTypeName(MsgType::FwdGetX), "FwdGetX");
}

TEST(MemTypes, WritablePredicate)
{
    EXPECT_FALSE(mem::writable(mem::LineState::Invalid));
    EXPECT_FALSE(mem::writable(mem::LineState::Shared));
    EXPECT_TRUE(mem::writable(mem::LineState::Exclusive));
    EXPECT_TRUE(mem::writable(mem::LineState::Modified));
    EXPECT_FALSE(mem::valid(mem::LineState::Invalid));
    EXPECT_TRUE(mem::valid(mem::LineState::Shared));
}

/** A sink recording what it received. */
struct RecordingSink : mem::MsgSink
{
    std::vector<Msg> got;
    void receive(const Msg& m) override { got.push_back(m); }
};

struct FabricRig
{
    EventQueue eq;
    noc::Network net;
    mem::AddressMap map;
    mem::Fabric fabric;
    RecordingSink ctrl0, ctrl1, dir0, dir1;

    FabricRig()
        : net(eq, cfg()), map(2), fabric(net, map)
    {
        fabric.registerController(0, ctrl0);
        fabric.registerController(1, ctrl1);
        fabric.registerDirectory(0, dir0);
        fabric.registerDirectory(1, dir1);
    }

    static noc::NetworkConfig
    cfg()
    {
        noc::NetworkConfig c;
        c.dimension = 1;
        return c;
    }
};

TEST(Fabric, RoutesToHomeDirectory)
{
    FabricRig r;
    // Two shared pages: homes 0 and 1.
    const Addr p0 = r.map.allocShared(4096);
    const Addr p1 = r.map.allocShared(4096);
    EXPECT_EQ(r.fabric.home(p0), 0u);
    EXPECT_EQ(r.fabric.home(p1), 1u);

    r.fabric.toDirectory(1, mem::makeMsg(MsgType::GetS,
                                         mem::lineAddr(p0), 1));
    r.fabric.toDirectory(0, mem::makeMsg(MsgType::GetS,
                                         mem::lineAddr(p1), 0));
    r.eq.run();
    ASSERT_EQ(r.dir0.got.size(), 1u);
    ASSERT_EQ(r.dir1.got.size(), 1u);
    EXPECT_EQ(r.dir0.got[0].src, 1u);
    EXPECT_EQ(r.dir1.got[0].src, 0u);
}

TEST(Fabric, RoutesToController)
{
    FabricRig r;
    const Addr p0 = r.map.allocShared(4096);
    r.fabric.toController(0, 1,
                          mem::makeMsg(MsgType::Inv, p0, 0));
    r.eq.run();
    ASSERT_EQ(r.ctrl1.got.size(), 1u);
    EXPECT_EQ(r.ctrl1.got[0].type, MsgType::Inv);
    EXPECT_TRUE(r.ctrl0.got.empty());
}

TEST(Fabric, UnregisteredSinkPanics)
{
    EventQueue eq;
    noc::NetworkConfig c;
    c.dimension = 1;
    noc::Network net(eq, c);
    mem::AddressMap map(2);
    mem::Fabric fabric(net, map);
    const Addr p = map.allocShared(4096);
    EXPECT_THROW(
        fabric.toDirectory(0, mem::makeMsg(MsgType::GetS, p, 0)),
        PanicError);
}

} // namespace
} // namespace tb
