/**
 * @file
 * Unit tests for the hypercube wormhole interconnect.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

noc::NetworkConfig
smallConfig(unsigned dim)
{
    noc::NetworkConfig c;
    c.dimension = dim;
    return c;
}

TEST(Network, HopsIsHammingDistance)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(6));
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 0b111111), 6u);
    EXPECT_EQ(net.hops(0b1010, 0b0101), 4u);
    EXPECT_EQ(net.hops(5, 5), 0u);
}

TEST(Network, ZeroLoadLatencyMatchesModel)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(6));
    // marshal(16) + h*pin(16) + (flits-1)*4 + unmarshal(16), in ns.
    // 8B -> 1 flit.
    EXPECT_EQ(net.zeroLoadLatency(0, 8), 32 * kNanosecond);
    EXPECT_EQ(net.zeroLoadLatency(3, 8), (32 + 48) * kNanosecond);
    // 72B -> 5 flits -> +16ns of body.
    EXPECT_EQ(net.zeroLoadLatency(2, 72), (32 + 32 + 16) * kNanosecond);
}

TEST(Network, DeliversAtZeroLoadLatency)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick delivered = kTickNever;
    net.send(0, 7, 8, [&]() { delivered = eq.now(); });
    eq.run();
    EXPECT_EQ(delivered, net.zeroLoadLatency(3, 8));
}

TEST(Network, LocalLoopbackChargesMarshalingOnly)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick delivered = kTickNever;
    net.send(4, 4, 8, [&]() { delivered = eq.now(); });
    eq.run();
    EXPECT_EQ(delivered, 32 * kNanosecond);
}

TEST(Network, PointToPointOrderPreserved)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    std::vector<int> order;
    // Big message first, tiny message second: the tiny one must not
    // overtake (coherence correctness depends on this).
    net.send(0, 5, 1024, [&]() { order.push_back(1); });
    net.send(0, 5, 8, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, ContentionSerializesSameLink)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick first = 0, second = 0;
    // Same source and destination: both messages traverse link (0,
    // dim 0) and must serialize there.
    net.send(0, 1, 1024, [&]() { first = eq.now(); });
    net.send(0, 1, 1024, [&]() { second = eq.now(); });
    eq.run();
    EXPECT_GT(second, first);
    // 1024B = 64 flits = 256ns serialization on the shared link.
    EXPECT_GE(second - first, 250 * kNanosecond);
}

TEST(Network, DisjointPathsDoNotInterfere)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick a = 0, b = 0;
    net.send(0, 1, 8, [&]() { a = eq.now(); });
    net.send(2, 3, 8, [&]() { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, b); // identical latency, no shared links
}

TEST(Network, StatsCountMessagesAndBytes)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    net.send(0, 1, 100, []() {});
    net.send(1, 2, 50, []() {});
    eq.run();
    EXPECT_DOUBLE_EQ(net.statistics().scalarValue("messages"), 2.0);
    EXPECT_DOUBLE_EQ(net.statistics().scalarValue("bytes"), 150.0);
}

TEST(Network, RejectsOutOfTopologySend)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(2));
    EXPECT_THROW(net.send(0, 9, 8, []() {}), PanicError);
    EXPECT_THROW(net.send(9, 0, 8, []() {}), PanicError);
}

TEST(Network, RejectsEmptyCallback)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(2));
    EXPECT_THROW(net.send(0, 1, 8, noc::Network::Deliver{}),
                 PanicError);
}

TEST(Network, RejectsBadDimension)
{
    EventQueue eq;
    noc::NetworkConfig c;
    c.dimension = 0;
    EXPECT_THROW(noc::Network(eq, c), FatalError);
    c.dimension = 17;
    EXPECT_THROW(noc::Network(eq, c), FatalError);
}

TEST(Network, ContentionCanBeDisabled)
{
    EventQueue eq;
    noc::NetworkConfig c = smallConfig(3);
    c.modelContention = false;
    noc::Network net(eq, c);
    Tick first = 0, second = 0;
    net.send(0, 1, 1024, [&]() { first = eq.now(); });
    net.send(0, 1, 1024, [&]() { second = eq.now(); });
    eq.run();
    // Without link reservation both arrive together (order still
    // preserved by the point-to-point clamp).
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace tb
