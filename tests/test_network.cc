/**
 * @file
 * Unit tests for the hypercube wormhole interconnect.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/fault_hooks.hh"
#include "sim/hooks.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

noc::NetworkConfig
smallConfig(unsigned dim)
{
    noc::NetworkConfig c;
    c.dimension = dim;
    return c;
}

TEST(Network, HopsIsHammingDistance)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(6));
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 0b111111), 6u);
    EXPECT_EQ(net.hops(0b1010, 0b0101), 4u);
    EXPECT_EQ(net.hops(5, 5), 0u);
}

TEST(Network, ZeroLoadLatencyMatchesModel)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(6));
    // marshal(16) + h*pin(16) + (flits-1)*4 + unmarshal(16), in ns.
    // 8B -> 1 flit.
    EXPECT_EQ(net.zeroLoadLatency(0, 8), 32 * kNanosecond);
    EXPECT_EQ(net.zeroLoadLatency(3, 8), (32 + 48) * kNanosecond);
    // 72B -> 5 flits -> +16ns of body.
    EXPECT_EQ(net.zeroLoadLatency(2, 72), (32 + 32 + 16) * kNanosecond);
}

TEST(Network, DeliversAtZeroLoadLatency)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick delivered = kTickNever;
    net.send(0, 7, 8, [&]() { delivered = eq.now(); });
    eq.run();
    EXPECT_EQ(delivered, net.zeroLoadLatency(3, 8));
}

TEST(Network, LocalLoopbackChargesMarshalingOnly)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick delivered = kTickNever;
    net.send(4, 4, 8, [&]() { delivered = eq.now(); });
    eq.run();
    EXPECT_EQ(delivered, 32 * kNanosecond);
}

TEST(Network, PointToPointOrderPreserved)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    std::vector<int> order;
    // Big message first, tiny message second: the tiny one must not
    // overtake (coherence correctness depends on this).
    net.send(0, 5, 1024, [&]() { order.push_back(1); });
    net.send(0, 5, 8, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, ContentionSerializesSameLink)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick first = 0, second = 0;
    // Same source and destination: both messages traverse link (0,
    // dim 0) and must serialize there.
    net.send(0, 1, 1024, [&]() { first = eq.now(); });
    net.send(0, 1, 1024, [&]() { second = eq.now(); });
    eq.run();
    EXPECT_GT(second, first);
    // 1024B = 64 flits = 256ns serialization on the shared link.
    EXPECT_GE(second - first, 250 * kNanosecond);
}

TEST(Network, DisjointPathsDoNotInterfere)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    Tick a = 0, b = 0;
    net.send(0, 1, 8, [&]() { a = eq.now(); });
    net.send(2, 3, 8, [&]() { b = eq.now(); });
    eq.run();
    EXPECT_EQ(a, b); // identical latency, no shared links
}

TEST(Network, StatsCountMessagesAndBytes)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(3));
    net.send(0, 1, 100, []() {});
    net.send(1, 2, 50, []() {});
    eq.run();
    EXPECT_DOUBLE_EQ(net.statistics().scalarValue("messages"), 2.0);
    EXPECT_DOUBLE_EQ(net.statistics().scalarValue("bytes"), 150.0);
}

TEST(Network, RejectsOutOfTopologySend)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(2));
    EXPECT_THROW(net.send(0, 9, 8, []() {}), PanicError);
    EXPECT_THROW(net.send(9, 0, 8, []() {}), PanicError);
}

TEST(Network, RejectsEmptyCallback)
{
    EventQueue eq;
    noc::Network net(eq, smallConfig(2));
    EXPECT_THROW(net.send(0, 1, 8, noc::Network::Deliver{}),
                 PanicError);
}

TEST(Network, RejectsBadDimension)
{
    EventQueue eq;
    noc::NetworkConfig c;
    c.dimension = 0;
    EXPECT_THROW(noc::Network(eq, c), FatalError);
    c.dimension = 17;
    EXPECT_THROW(noc::Network(eq, c), FatalError);
}

TEST(Network, ContentionCanBeDisabled)
{
    EventQueue eq;
    noc::NetworkConfig c = smallConfig(3);
    c.modelContention = false;
    noc::Network net(eq, c);
    Tick first = 0, second = 0;
    net.send(0, 1, 1024, [&]() { first = eq.now(); });
    net.send(0, 1, 1024, [&]() { second = eq.now(); });
    eq.run();
    // Without link reservation both arrive together (order still
    // preserved by the point-to-point clamp).
    EXPECT_EQ(first, second);
}

/**
 * Property: per (src, dst) pair, delivery order equals send order, no
 * matter how link contention and fault-injected link stalls reshape
 * the per-hop timing. The directory protocol's correctness rests on
 * exactly this (a forwarded intervention must not overtake the data
 * grant that precedes it), so it has to survive the ugliest timing the
 * model can produce, not just the zero-load case.
 */
TEST(Network, P2pOrderSurvivesContentionAndFaultStalls)
{
    struct StallHooks : FaultHooks
    {
        Tick
        linkStall(NodeId at, unsigned dim) override
        {
            // Deterministic but irregular: every fifth (router, dim)
            // combination stalls its outgoing link hard enough to let
            // later messages catch up on other paths.
            return ((at * 7 + dim * 13) % 5 == 0)
                       ? Tick{3 * kMicrosecond}
                       : Tick{0};
        }
    };

    EventQueue eq;
    StallHooks faults;
    Hooks hooks;
    hooks.faults = &faults;
    noc::Network net(eq, smallConfig(4), "noc", &hooks);
    const unsigned n = net.config().nodes();

    // Seeded LCG: the schedule is random-looking but reproducible.
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    const auto next = [&]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<unsigned>(lcg >> 33);
    };

    using Pair = std::pair<NodeId, NodeId>;
    std::map<Pair, std::uint64_t> sent;
    std::map<Pair, std::vector<std::uint64_t>> delivered;
    for (int i = 0; i < 400; ++i) {
        const NodeId src = next() % n;
        const NodeId dst = next() % n;
        // Mix single-flit control with multi-flit data so small
        // messages physically can catch up with large predecessors.
        const unsigned bytes = 8 + (next() % 5) * 64;
        const Tick at = (next() % 50) * kMicrosecond;
        // Stamp the sequence at *injection* (inside the event), since
        // send order is defined by simulated time, not by the order
        // this loop happens to build the schedule in.
        eq.schedule(at, [&net, &sent, &delivered, src, dst, bytes]() {
            const std::uint64_t seq = sent[{src, dst}]++;
            net.send(src, dst, bytes, [&delivered, src, dst, seq]() {
                delivered[{src, dst}].push_back(seq);
            });
        });
    }
    eq.run();

    std::size_t total = 0;
    for (const auto& [pair, seqs] : delivered) {
        total += seqs.size();
        for (std::size_t i = 1; i < seqs.size(); ++i) {
            EXPECT_EQ(seqs[i], seqs[i - 1] + 1)
                << "pair (" << pair.first << ", " << pair.second
                << ") delivered out of send order";
        }
    }
    EXPECT_EQ(total, 400u); // nothing dropped, nothing duplicated
}

} // namespace
} // namespace tb
