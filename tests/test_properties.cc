/**
 * @file
 * Property-based tests: invariants that must hold across swept
 * parameter spaces and randomized schedules, driven through
 * parameterized gtest suites.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "mem/memory_system.hh"
#include "power/sleep_states.hh"
#include "sim/random.hh"
#include "thrifty/thrifty_barrier.hh"

namespace tb {
namespace {

using harness::ConfigKind;
using harness::Machine;
using harness::SystemConfig;

// ----------------------------------------------------------------------
// Property: the network never delivers earlier than its zero-load
// latency, and zero-load latency is monotone in hops and size.
// ----------------------------------------------------------------------

class NetworkLatencyProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(NetworkLatencyProperty, DeliveryNeverBeatsZeroLoad)
{
    const unsigned dim = GetParam();
    EventQueue eq;
    noc::NetworkConfig cfg;
    cfg.dimension = dim;
    noc::Network net(eq, cfg);
    Random rng(dim * 17 + 1);
    const unsigned n = cfg.nodes();

    std::vector<std::pair<Tick, Tick>> checks; // (actual, floor)
    for (int i = 0; i < 200; ++i) {
        const NodeId src = static_cast<NodeId>(rng.uniformInt(n));
        const NodeId dst = static_cast<NodeId>(rng.uniformInt(n));
        const unsigned bytes =
            8 + static_cast<unsigned>(rng.uniformInt(256));
        const Tick sent = eq.now();
        const Tick floor = net.zeroLoadLatency(net.hops(src, dst),
                                               bytes);
        net.send(src, dst, bytes, [&checks, sent, floor, &eq]() {
            checks.emplace_back(eq.now() - sent, floor);
        });
    }
    eq.run();
    ASSERT_EQ(checks.size(), 200u);
    for (const auto& [actual, floor] : checks)
        EXPECT_GE(actual, floor);
}

TEST_P(NetworkLatencyProperty, ZeroLoadMonotone)
{
    const unsigned dim = GetParam();
    EventQueue eq;
    noc::NetworkConfig cfg;
    cfg.dimension = dim;
    noc::Network net(eq, cfg);
    for (unsigned h = 1; h <= dim; ++h)
        EXPECT_GT(net.zeroLoadLatency(h, 64),
                  net.zeroLoadLatency(h - 1, 64));
    for (unsigned b = 64; b <= 1024; b *= 2)
        EXPECT_GE(net.zeroLoadLatency(2, b * 2),
                  net.zeroLoadLatency(2, b));
}

INSTANTIATE_TEST_SUITE_P(Dims, NetworkLatencyProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u));

// ----------------------------------------------------------------------
// Property: under a randomized coherent access mix, the memory value
// observed by any reader equals the most recent completed store, and
// directory/controller states stay consistent.
// ----------------------------------------------------------------------

class CoherenceValueProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(CoherenceValueProperty, SequentialValueSemantics)
{
    const unsigned seed = GetParam();
    EventQueue eq;
    noc::NetworkConfig ncfg;
    ncfg.dimension = 3;
    noc::Network net(eq, ncfg);
    mem::MemorySystem mem(eq, net, mem::MemoryConfig{});
    const Addr base = mem.addressMap().allocShared(8 * 4096);
    Random rng(seed);

    // Issue one access at a time (sequential), checking read values
    // against a software model of the word.
    std::uint64_t model[8] = {};
    for (int i = 0; i < 300; ++i) {
        const unsigned word = static_cast<unsigned>(rng.uniformInt(8));
        const Addr a = base + word * 2048;
        const NodeId n = static_cast<NodeId>(rng.uniformInt(8));
        if (rng.chance(0.45)) {
            const std::uint64_t v = rng.next();
            bool done = false;
            mem.controller(n).store(a, v, [&]() { done = true; });
            eq.run();
            ASSERT_TRUE(done);
            model[word] = v;
        } else if (rng.chance(0.15)) {
            std::optional<std::uint64_t> old;
            mem.controller(n).atomicRmw(
                a, [&mem, a](tb::Tick) { return mem.backend().fetchAdd(a, 3); },
                [&](std::uint64_t o) { old = o; });
            eq.run();
            ASSERT_TRUE(old.has_value());
            EXPECT_EQ(*old, model[word]);
            model[word] += 3;
        } else {
            std::optional<std::uint64_t> got;
            mem.controller(n).load(a,
                                   [&](std::uint64_t v) { got = v; });
            eq.run();
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, model[word]) << "word " << word;
        }
    }
}

TEST_P(CoherenceValueProperty, SingleWriterInvariant)
{
    const unsigned seed = GetParam();
    EventQueue eq;
    noc::NetworkConfig ncfg;
    ncfg.dimension = 2;
    noc::Network net(eq, ncfg);
    mem::MemorySystem mem(eq, net, mem::MemoryConfig{});
    const Addr a = mem.addressMap().allocShared(4096);
    Random rng(seed ^ 0xabcd);

    for (int i = 0; i < 120; ++i) {
        const NodeId n = static_cast<NodeId>(rng.uniformInt(4));
        if (rng.chance(0.5)) {
            bool done = false;
            mem.controller(n).store(a, i, [&]() { done = true; });
            eq.run();
            ASSERT_TRUE(done);
        } else {
            std::optional<std::uint64_t> got;
            mem.controller(n).load(a,
                                   [&](std::uint64_t v) { got = v; });
            eq.run();
            ASSERT_TRUE(got.has_value());
        }
        // Invariant: at most one cache holds the line writable, and
        // if one does, nobody else holds it at all.
        unsigned writable_copies = 0, copies = 0;
        for (NodeId c = 0; c < 4; ++c) {
            const mem::LineState s = mem.controller(c).l2State(a);
            if (s != mem::LineState::Invalid)
                ++copies;
            if (mem::writable(s))
                ++writable_copies;
        }
        EXPECT_LE(writable_copies, 1u);
        if (writable_copies == 1) {
            EXPECT_EQ(copies, 1u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceValueProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ----------------------------------------------------------------------
// Property: sleep-state selection returns the deepest feasible state.
// ----------------------------------------------------------------------

class SleepSelectProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SleepSelectProperty, DeepestFeasibleChosen)
{
    power::SleepStateTable t = power::SleepStateTable::paperDefault();
    Random rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        const Tick stall = rng.uniformInt(120 * kMicrosecond);
        const power::SleepState* s = t.select(stall);
        if (s) {
            EXPECT_LE(2 * s->transitionLatency, stall);
            // No deeper state also fits.
            for (std::size_t j = 0; j < t.size(); ++j) {
                const power::SleepState& other = t.at(j);
                if (other.transitionLatency > s->transitionLatency) {
                    EXPECT_GT(2 * other.transitionLatency, stall);
                }
            }
        } else {
            for (std::size_t j = 0; j < t.size(); ++j)
                EXPECT_GT(2 * t.at(j).transitionLatency, stall);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SleepSelectProperty,
                         ::testing::Values(11u, 22u, 33u));

// ----------------------------------------------------------------------
// Property: barrier correctness under randomized schedules — no
// thread passes instance k before every thread reached instance k —
// for every configuration and machine size.
// ----------------------------------------------------------------------

struct BarrierPropertyParam
{
    unsigned dim;
    ConfigKind kind;
    unsigned seed;
};

class BarrierCorrectnessProperty
    : public ::testing::TestWithParam<BarrierPropertyParam>
{};

TEST_P(BarrierCorrectnessProperty, NoEarlyPass)
{
    const auto& p = GetParam();
    Machine m(SystemConfig::small(p.dim));
    const unsigned n = m.config().numNodes();
    const unsigned instances = 7;

    thrifty::SyncStats stats;
    harness::ConfigBarrierProvider provider(m, p.kind, nullptr, stats);
    thrifty::Barrier& b = provider.barrierFor(0x99);

    Random rng(p.seed);
    // Pre-draw random compute times.
    std::vector<std::vector<Tick>> delay(instances,
                                         std::vector<Tick>(n));
    for (auto& inst : delay) {
        for (auto& d : inst)
            d = 10 * kMicrosecond + rng.uniformInt(2 * kMillisecond);
    }

    std::vector<unsigned> reached(n, 0); // arrivals per thread
    std::vector<unsigned> passed(n, 0);  // departures per thread
    bool violated = false;

    std::function<void(ThreadId, unsigned)> round = [&](ThreadId tid,
                                                        unsigned inst) {
        if (inst >= instances)
            return;
        m.thread(tid).compute(delay[inst][tid], [&, tid, inst]() {
            reached[tid] = inst + 1;
            b.arrive(m.thread(tid), [&, tid, inst]() {
                // Barrier semantics: when anyone departs instance
                // `inst`, every thread must have arrived at it.
                for (unsigned t = 0; t < n; ++t) {
                    if (reached[t] < inst + 1)
                        violated = true;
                }
                passed[tid] = inst + 1;
                round(tid, inst + 1);
            });
        });
    };
    for (ThreadId t = 0; t < n; ++t)
        round(t, 0);
    m.run();

    EXPECT_FALSE(violated);
    for (unsigned t = 0; t < n; ++t)
        EXPECT_EQ(passed[t], instances) << "thread " << t;
}

std::vector<BarrierPropertyParam>
barrierMatrix()
{
    std::vector<BarrierPropertyParam> out;
    for (unsigned dim : {1u, 2u, 3u}) {
        for (ConfigKind k :
             {ConfigKind::Baseline, ConfigKind::ThriftyHalt,
              ConfigKind::OracleHalt, ConfigKind::Thrifty,
              ConfigKind::Ideal}) {
            for (unsigned seed : {1u, 2u})
                out.push_back({dim, k, seed});
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BarrierCorrectnessProperty,
    ::testing::ValuesIn(barrierMatrix()),
    [](const auto& info) {
        const auto& p = info.param;
        std::string n = harness::configName(p.kind);
        for (auto& c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_dim" + std::to_string(p.dim) + "_s" +
               std::to_string(p.seed);
    });

// ----------------------------------------------------------------------
// Property: machine-wide accounting — time buckets of every finished
// run cover each CPU's lifetime, and energy is positive and bounded
// by TDPmax * time.
// ----------------------------------------------------------------------

class AccountingProperty : public ::testing::TestWithParam<ConfigKind>
{};

TEST_P(AccountingProperty, EnergyBoundedByTdp)
{
    SystemConfig sys = SystemConfig::small(2);
    workloads::AppProfile app =
        workloads::appByName("Radiosity");
    app.iterations = 4;
    auto r = harness::runExperiment(sys, app, GetParam());

    Tick total_time = 0;
    double total_energy = 0.0;
    for (std::size_t i = 0; i < power::kNumBuckets; ++i) {
        total_time += r.time[i];
        total_energy += r.energy[i];
        EXPECT_GE(r.energy[i], 0.0);
    }
    EXPECT_GT(total_energy, 0.0);
    // Upper bound: everything at TDPmax the whole time.
    EXPECT_LE(total_energy,
              sys.power.tdpMax * ticksToSeconds(total_time) + 1e-9);
    // Lower bound: everything at the deepest sleep power.
    EXPECT_GE(total_energy,
              sys.power.tdpMax * 0.022 * ticksToSeconds(total_time));
    // Time covers at least the parallel section on every CPU.
    EXPECT_GE(total_time,
              static_cast<Tick>(0.99 * 4 *
                                static_cast<double>(r.execTime)));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AccountingProperty,
    ::testing::Values(ConfigKind::Baseline, ConfigKind::ThriftyHalt,
                      ConfigKind::OracleHalt, ConfigKind::Thrifty,
                      ConfigKind::Ideal),
    [](const auto& info) {
        std::string n = harness::configName(info.param);
        for (auto& c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

// ----------------------------------------------------------------------
// Property: randomized application profiles never deadlock, always
// keep accounting sane, and thrifty never costs much more energy than
// Baseline, under every configuration.
// ----------------------------------------------------------------------

class FuzzProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FuzzProperty, RandomProfilesAllConfigs)
{
    Random rng(GetParam() * 7919 + 13);

    workloads::AppProfile app;
    app.name = "fuzz";
    const unsigned n_prologue =
        static_cast<unsigned>(rng.uniformInt(3));
    for (unsigned i = 0; i < n_prologue; ++i) {
        workloads::PhaseSpec p;
        p.pc = 0xf000 + i;
        p.meanCompute =
            50 * kMicrosecond + rng.uniformInt(400 * kMicrosecond);
        p.imbalanceCv = rng.uniform(0.0, 0.4);
        p.memAccesses = static_cast<unsigned>(rng.uniformInt(12));
        app.prologue.push_back(p);
    }
    const unsigned n_loop =
        1 + static_cast<unsigned>(rng.uniformInt(4));
    for (unsigned i = 0; i < n_loop; ++i) {
        workloads::PhaseSpec p;
        p.pc = 0xf100 + i;
        p.meanCompute =
            30 * kMicrosecond + rng.uniformInt(600 * kMicrosecond);
        p.imbalanceCv = rng.uniform(0.0, 0.5);
        p.instanceJitterCv = rng.uniform(0.0, 0.1);
        p.memAccesses = static_cast<unsigned>(rng.uniformInt(16));
        if (rng.chance(0.3)) {
            p.swingProbability = rng.uniform(0.1, 0.5);
            p.swingFactor = rng.uniform(2.0, 8.0);
        }
        if (rng.chance(0.3)) {
            p.spikeProbability = rng.uniform(0.02, 0.15);
            p.spikeFactor = rng.uniform(5.0, 50.0);
        }
        app.loop.push_back(p);
    }
    app.iterations = 3 + static_cast<unsigned>(rng.uniformInt(5));
    app.sharedBytes = 64 * 1024;
    app.privateBytes = 16 * 1024;

    SystemConfig sys = SystemConfig::small(
        1 + static_cast<unsigned>(rng.uniformInt(3)));
    sys.seed = rng.next();

    double base_energy = 0.0;
    for (ConfigKind k :
         {ConfigKind::Baseline, ConfigKind::ThriftyHalt,
          ConfigKind::OracleHalt, ConfigKind::Thrifty,
          ConfigKind::Ideal}) {
        const auto r = harness::runExperiment(sys, app, k);
        // Completion (runExperiment panics on deadlock).
        EXPECT_EQ(r.sync.instances, app.totalInstances());
        EXPECT_EQ(r.sync.arrivals,
                  app.totalInstances() * sys.numNodes());
        // Accounting sanity.
        EXPECT_GT(r.totalEnergy(), 0.0);
        EXPECT_GE(r.imbalance(), 0.0);
        EXPECT_LE(r.imbalance(), 1.0);
        if (k == ConfigKind::Baseline)
            base_energy = r.totalEnergy();
        else
            EXPECT_LT(r.totalEnergy(), 1.15 * base_energy)
                << harness::configName(k);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

} // namespace
} // namespace tb
