/**
 * @file
 * Unit + property tests for the combining-tree thrifty barrier.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "harness/machine.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "thrifty/conventional_barrier.hh"
#include "thrifty/tree_barrier.hh"

namespace tb {
namespace {

using harness::Machine;
using harness::SystemConfig;
using thrifty::SyncStats;
using thrifty::ThriftyConfig;
using thrifty::ThriftyRuntime;
using thrifty::TreeBarrier;

struct Rig
{
    Machine m;
    SyncStats stats;
    std::unique_ptr<ThriftyRuntime> rt;
    std::unique_ptr<TreeBarrier> barrier;

    explicit Rig(unsigned dim = 3, unsigned radix = 2,
                 const ThriftyConfig& cfg = ThriftyConfig::thrifty())
        : m(SystemConfig::small(dim))
    {
        rt = std::make_unique<ThriftyRuntime>(m.config().numNodes(),
                                              cfg, stats);
        barrier = std::make_unique<TreeBarrier>(
            m.eventQueue(), 0x42, *rt, m.memory(), radix, "tree");
    }

    void
    drive(unsigned instances,
          const std::function<Tick(ThreadId, unsigned)>& delay,
          std::vector<Tick>* departs = nullptr)
    {
        const unsigned n = m.config().numNodes();
        std::function<void(ThreadId, unsigned)> round =
            [&](ThreadId tid, unsigned inst) {
                if (inst >= instances)
                    return;
                m.thread(tid).compute(delay(tid, inst),
                                      [&, tid, inst]() {
                    barrier->arrive(m.thread(tid), [&, tid, inst]() {
                        if (departs)
                            (*departs)[tid] = m.eventQueue().now();
                        round(tid, inst + 1);
                    });
                });
            };
        for (ThreadId t = 0; t < n; ++t)
            round(t, 0);
        m.run();
    }
};

Tick
imbalanced(ThreadId tid, unsigned)
{
    return tid == 0 ? Tick{kMillisecond} : Tick{20 * kMicrosecond};
}

TEST(TreeBarrier, TreeShapeForEightThreadsRadix2)
{
    Rig r(3, 2);
    EXPECT_EQ(r.barrier->levels(), 3u); // 4 + 2 + 1 groups
}

TEST(TreeBarrier, ReleasesAllNoEarlyPass)
{
    Rig r(3, 2);
    std::vector<Tick> departs(8, 0);
    Tick last_arrival = 0;
    r.drive(
        1,
        [&](ThreadId tid, unsigned) {
            const Tick d = (tid + 1) * 100 * kMicrosecond;
            last_arrival = std::max(last_arrival, d);
            return d;
        },
        &departs);
    EXPECT_EQ(r.stats.instances, 1u);
    for (Tick d : departs)
        EXPECT_GE(d, last_arrival);
}

TEST(TreeBarrier, ManyInstancesRotatingLast)
{
    Rig r(3, 2);
    r.drive(10, [](ThreadId tid, unsigned inst) {
        return (1 + (tid + inst) % 8) * 60 * kMicrosecond;
    });
    EXPECT_EQ(r.stats.instances, 10u);
    EXPECT_EQ(r.stats.arrivals, 80u);
}

TEST(TreeBarrier, NonPowerOfRadixPopulation)
{
    // 8 threads, radix 3: groups of 3/3/2, then 3, then 1.
    Rig r(3, 3);
    r.drive(6, imbalanced);
    EXPECT_EQ(r.stats.instances, 6u);
}

TEST(TreeBarrier, SleepsAfterWarmup)
{
    Rig r(3, 2);
    r.drive(4, imbalanced);
    EXPECT_GT(r.stats.sleeps, 0u);
    EXPECT_EQ(r.stats.instances, 4u);
}

TEST(TreeBarrier, SavesEnergyLikeCentralThrifty)
{
    double base_energy = 0.0, tree_energy = 0.0;
    {
        Machine m(SystemConfig::small(3));
        SyncStats stats;
        thrifty::ConventionalBarrier cb(m.eventQueue(), 0x42, 8,
                                        m.memory(), stats, "cb");
        std::function<void(ThreadId, unsigned)> round =
            [&](ThreadId tid, unsigned inst) {
                if (inst >= 6)
                    return;
                m.thread(tid).compute(imbalanced(tid, inst),
                                      [&, tid, inst]() {
                    cb.arrive(m.thread(tid), [&, tid, inst]() {
                        round(tid, inst + 1);
                    });
                });
            };
        for (ThreadId t = 0; t < 8; ++t)
            round(t, 0);
        m.run();
        base_energy = m.totalEnergy().totalEnergy();
    }
    {
        Rig r(3, 2);
        r.drive(6, imbalanced);
        tree_energy = r.m.totalEnergy().totalEnergy();
    }
    EXPECT_LT(tree_energy, 0.9 * base_energy);
}

TEST(TreeBarrier, BrtsStaysConsistentWithTrace)
{
    Rig r(3, 2);
    r.stats.traceEnabled = true;
    r.drive(5, imbalanced);
    ASSERT_EQ(r.stats.trace.size(), 5u * 8);
    for (const auto& e : r.stats.trace)
        EXPECT_EQ(e.bit, e.compute + e.stall);
}

TEST(TreeBarrier, RandomizedNoEarlyPassProperty)
{
    for (unsigned seed : {3u, 11u}) {
        Rig r(2, 2); // 4 threads
        Random rng(seed);
        const unsigned n = 4, instances = 6;
        std::vector<unsigned> reached(n, 0);
        bool violated = false;
        std::function<void(ThreadId, unsigned)> round =
            [&](ThreadId tid, unsigned inst) {
                if (inst >= instances)
                    return;
                const Tick d =
                    10 * kMicrosecond +
                    rng.uniformInt(1500 * kMicrosecond);
                r.m.thread(tid).compute(d, [&, tid, inst]() {
                    reached[tid] = inst + 1;
                    r.barrier->arrive(r.m.thread(tid),
                                      [&, tid, inst]() {
                        for (unsigned t = 0; t < n; ++t) {
                            if (reached[t] < inst + 1)
                                violated = true;
                        }
                        round(tid, inst + 1);
                    });
                });
            };
        for (ThreadId t = 0; t < n; ++t)
            round(t, 0);
        r.m.run();
        EXPECT_FALSE(violated) << "seed " << seed;
        EXPECT_EQ(r.stats.instances, instances) << "seed " << seed;
    }
}

TEST(TreeBarrier, BadRadixFatal)
{
    Machine m(SystemConfig::small(1));
    SyncStats stats;
    ThriftyRuntime rt(2, ThriftyConfig::thrifty(), stats);
    EXPECT_THROW(TreeBarrier(m.eventQueue(), 0x1, rt, m.memory(), 1,
                             "bad"),
                 FatalError);
}

TEST(TreeBarrier, OracleUnsupported)
{
    Machine m(SystemConfig::small(1));
    SyncStats stats;
    ThriftyRuntime rt(2, ThriftyConfig::oracleHalt(), stats);
    EXPECT_THROW(TreeBarrier(m.eventQueue(), 0x1, rt, m.memory(), 2,
                             "bad"),
                 FatalError);
}

} // namespace
} // namespace tb
