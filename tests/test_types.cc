/**
 * @file
 * Unit tests for fundamental types, time conversion, and clock
 * domains.
 */

#include <gtest/gtest.h>

#include "sim/types.hh"

namespace tb {
namespace {

TEST(Types, TimeUnitConstants)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kMicrosecond, 1000u * 1000u);
    EXPECT_EQ(kMillisecond, 1000u * 1000u * 1000u);
    EXPECT_EQ(kSecond, 1000ull * 1000 * 1000 * 1000);
}

TEST(Types, TickSecondConversionRoundTrips)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kMillisecond), 1e-3);
    EXPECT_EQ(secondsToTicks(1.0), kSecond);
    EXPECT_EQ(secondsToTicks(2.5e-6), Tick{2500000});
    EXPECT_EQ(secondsToTicks(ticksToSeconds(123456789)),
              Tick{123456789});
}

TEST(ClockDomain, PaperFrequenciesExact)
{
    // Table 1 clock domains in ticks (picoseconds).
    const ClockDomain cpu(1000);   // 1 GHz
    const ClockDomain l2(2000);    // 500 MHz
    const ClockDomain bus(4000);   // 250 MHz
    EXPECT_DOUBLE_EQ(cpu.frequencyHz(), 1e9);
    EXPECT_DOUBLE_EQ(l2.frequencyHz(), 5e8);
    EXPECT_DOUBLE_EQ(bus.frequencyHz(), 2.5e8);
}

TEST(ClockDomain, CycleTickConversion)
{
    const ClockDomain c(1000);
    EXPECT_EQ(c.cyclesToTicks(0), 0u);
    EXPECT_EQ(c.cyclesToTicks(15), 15000u);
    EXPECT_EQ(c.ticksToCycles(15999), 15u);
    EXPECT_EQ(c.ticksToCycles(16000), 16u);
}

TEST(ClockDomain, NextEdgeRounding)
{
    const ClockDomain c(4000);
    EXPECT_EQ(c.nextEdge(0), 0u);
    EXPECT_EQ(c.nextEdge(1), 4000u);
    EXPECT_EQ(c.nextEdge(4000), 4000u);
    EXPECT_EQ(c.nextEdge(4001), 8000u);
}

TEST(Types, Sentinels)
{
    EXPECT_GT(kTickNever, kSecond * 1000000);
    EXPECT_EQ(kInvalidNode, static_cast<NodeId>(~0u));
}

} // namespace
} // namespace tb
