/**
 * @file
 * Rule-engine tests for tools/tblint (docs/CHECKING.md, "Static
 * analysis"): for every rule ID, at least one fixture that fires and
 * one that is silenced by a well-formed suppression. The repo-wide
 * zero-findings guarantee is a separate ctest (tblint_repo_clean)
 * that runs the real binary over src/, tools/ and bench/.
 *
 * Fixtures live in raw strings; tblint never scans tests/, so the
 * deliberately-violating snippets here cannot trip the repo gate.
 */

#include "tblint/rules.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using tblint::Finding;
using tblint::lintContent;

/** Count findings for @p rule. */
std::size_t
countRule(const std::vector<Finding>& fs, const std::string& rule)
{
    return static_cast<std::size_t>(
        std::count_if(fs.begin(), fs.end(), [&](const Finding& f) {
            return f.rule == rule;
        }));
}

// ----------------------------------------------------------------------
// TBL000 — suppression hygiene
// ----------------------------------------------------------------------

TEST(TblintSuppressionHygiene, UnknownRuleIdFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(TBL999): no such rule
        int x;
    )tb");
    EXPECT_EQ(countRule(fs, "TBL000"), 1u);
}

TEST(TblintSuppressionHygiene, MissingReasonFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(TBL002)
        int x;
    )tb");
    EXPECT_EQ(countRule(fs, "TBL000"), 1u);
}

TEST(TblintSuppressionHygiene, EmptyRuleListFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(): forgot the id
        int x;
    )tb");
    EXPECT_EQ(countRule(fs, "TBL000"), 1u);
}

TEST(TblintSuppressionHygiene, WellFormedAllowIsClean)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(TBL002): genuine wall-clock deadline
        auto t0 = std::chrono::steady_clock::now();
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintSuppressionHygiene, Tbl000ItselfCannotBeSuppressed)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(TBL000): trying to silence the police
        // tblint-allow(TBL999): no such rule
        int x;
    )tb");
    // The TBL999 directive still draws a TBL000 despite the allow.
    EXPECT_EQ(countRule(fs, "TBL000"), 1u);
}

TEST(TblintSuppressionHygiene, MalformedAllowSuppressesNothing)
{
    // A reason-less allow is hygiene-flagged AND does not silence the
    // wall-clock finding it sits next to.
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(TBL002)
        auto t0 = std::chrono::steady_clock::now();
    )tb");
    EXPECT_EQ(countRule(fs, "TBL000"), 1u);
    EXPECT_EQ(countRule(fs, "TBL002"), 1u);
}

// ----------------------------------------------------------------------
// TBL001 — unordered-container iteration
// ----------------------------------------------------------------------

TEST(TblintUnorderedIteration, RangeForOverUnorderedMapFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        std::unordered_map<int, int> m;
        void f() {
            for (const auto& kv : m) { consume(kv); }
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL001"), 1u);
}

TEST(TblintUnorderedIteration, AllowSilences)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        std::unordered_map<int, int> m;
        void f() {
            // tblint-allow(TBL001): order-insensitive summation
            for (const auto& kv : m) { total += kv.second; }
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUnorderedIteration, DeclInCompanionHeaderIsSeen)
{
    // The member lives in the .hh, the loop in the .cc — the pairing
    // convention makes the declaration visible to the matcher.
    const auto fs = lintContent(
        "src/a.cc",
        R"tb(
        void Owner::dump() {
            for (const auto& kv : lines) { emitLine(kv); }
        }
        )tb",
        R"tb(
        class Owner {
            std::unordered_map<int, Line> lines;
        };
        )tb");
    EXPECT_EQ(countRule(fs, "TBL001"), 1u);
}

TEST(TblintUnorderedIteration, AliasedUnorderedTypeFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        using LineMap = std::unordered_map<int, Line>;
        LineMap lines;
        void f() {
            for (auto& kv : lines) { touch(kv); }
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL001"), 1u);
}

TEST(TblintUnorderedIteration, OrderedMapIsClean)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        std::map<int, int> m;
        void f() {
            for (const auto& kv : m) { consume(kv); }
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL002 — wall clock / ambient entropy
// ----------------------------------------------------------------------

TEST(TblintWallClock, SteadyClockFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        auto t0 = std::chrono::steady_clock::now();
    )tb");
    EXPECT_EQ(countRule(fs, "TBL002"), 1u);
}

TEST(TblintWallClock, LibcTimeCallFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        long stamp = time(nullptr);
    )tb");
    EXPECT_EQ(countRule(fs, "TBL002"), 1u);
}

TEST(TblintWallClock, RandomDeviceFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        std::random_device rd;
    )tb");
    EXPECT_EQ(countRule(fs, "TBL002"), 1u);
}

TEST(TblintWallClock, SameLineAllowSilences)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        auto t0 = std::chrono::steady_clock::now(); // tblint-allow(TBL002): bench timing
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintWallClock, RandomHeaderIsWhitelisted)
{
    const auto fs = lintContent("src/sim/random.hh", R"tb(
        std::random_device rd;
        long stamp = time(nullptr);
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintWallClock, MethodNamedTimeIsClean)
{
    // Declarations (`Tick time(Bucket)`) and member calls
    // (`model.time(b)`) are not libc time().
    const auto fs = lintContent("src/a.hh", R"tb(
        class EnergyModel {
            Tick time(Bucket b) const;
        };
        Tick probe(EnergyModel& m, Bucket b) { return m.time(b); }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintWallClock, SleepFamilyFires)
{
    // Blocking sleeps hide latency from lease/heartbeat machinery —
    // daemons and workers must wait on poll() timeouts instead.
    const auto fs = lintContent("src/svc/a.cc", R"tb(
        void waitAround() {
            sleep(1);
            usleep(100);
            nanosleep(&ts, nullptr);
            std::this_thread::sleep_for(std::chrono::seconds(1));
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL002"), 4u);
}

TEST(TblintWallClock, MethodNamedSleepIsClean)
{
    // The power model's sleep-state transitions (`cpu.sleep(state)`)
    // are simulation behaviour, not libc sleep().
    const auto fs = lintContent("src/a.cc", R"tb(
        void park(Cpu& cpu) { cpu.sleep(SleepState::DeepNap); }
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL003 — pointer identity in output
// ----------------------------------------------------------------------

TEST(TblintPointerIdentity, PercentPFires)
{
    // tblint-allow(TBL003): fixture deliberately carries the specifier
    const auto fs = lintContent("src/a.cc", R"tb(
        std::printf("node at %p\n", static_cast<void*>(n));
    )tb");
    EXPECT_EQ(countRule(fs, "TBL003"), 1u);
}

TEST(TblintPointerIdentity, HashOfPointerFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        std::unordered_set<Node*, std::hash<Node*>> seen;
    )tb");
    EXPECT_EQ(countRule(fs, "TBL003"), 1u);
}

TEST(TblintPointerIdentity, PointerToIntegerCastFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        auto key = reinterpret_cast<std::uintptr_t>(node);
    )tb");
    EXPECT_EQ(countRule(fs, "TBL003"), 1u);
}

TEST(TblintPointerIdentity, AllowSilences)
{
    // tblint-allow(TBL003): fixture deliberately carries the specifier
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(TBL003): debug-only dump, never an artifact
        std::printf("node at %p\n", static_cast<void*>(n));
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL010 — EventHandle member never canceled
// ----------------------------------------------------------------------

TEST(TblintHandleLifetime, UncanceledMemberFires)
{
    const auto fs = lintContent("src/a.hh", R"tb(
        class Owner {
            EventHandle tick_;
        };
    )tb");
    EXPECT_EQ(countRule(fs, "TBL010"), 1u);
}

TEST(TblintHandleLifetime, UncanceledHandleVectorFires)
{
    const auto fs = lintContent("src/a.hh", R"tb(
        class Owner {
            std::vector<EventHandle> pending_;
        };
    )tb");
    EXPECT_EQ(countRule(fs, "TBL010"), 1u);
}

TEST(TblintHandleLifetime, CancelInSameFileIsClean)
{
    const auto fs = lintContent("src/a.hh", R"tb(
        class Owner {
            void reset() { tick_.cancel(queue_); }
            EventHandle tick_;
        };
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintHandleLifetime, CancelInCompanionIsClean)
{
    const auto fs = lintContent(
        "src/a.hh",
        R"tb(
        class Owner {
            EventHandle tick_;
        };
        )tb",
        R"tb(
        void Owner::teardown() { tick_.cancel(queue_); }
        )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintHandleLifetime, AllowSilences)
{
    const auto fs = lintContent("src/a.hh", R"tb(
        class Owner {
            // tblint-allow(TBL010): queue provably drains in dtor
            EventHandle tick_;
        };
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL011 — handle use after cancel
// ----------------------------------------------------------------------

TEST(TblintUseAfterCancel, WhenAfterCancelFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        void f(EventQueue& q, EventHandle& h) {
            h.cancel(q);
            Tick t = h.when(q);
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL011"), 1u);
}

TEST(TblintUseAfterCancel, ScheduledAfterCancelFires)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        void f(EventQueue& q, EventHandle& h) {
            h.cancel(q);
            if (h.scheduled(q)) { retune(); }
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL011"), 1u);
}

TEST(TblintUseAfterCancel, RescheduleResetsTheHandle)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        void f(EventQueue& q, EventHandle& h) {
            h.cancel(q);
            h = q.schedule(later, ev);
            Tick t = h.when(q);
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUseAfterCancel, ScopeEndForgetsCancels)
{
    // The cancel happens in one function, the read in another — no
    // cross-function claim is made.
    const auto fs = lintContent("src/a.cc", R"tb(
        void stop(EventQueue& q, EventHandle& h) { h.cancel(q); }
        Tick peek(EventQueue& q, EventHandle& h) { return h.when(q); }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUseAfterCancel, AllowSilences)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        void f(EventQueue& q, EventHandle& h) {
            h.cancel(q);
            // tblint-allow(TBL011): asserting the no-op contract
            assert(!h.scheduled(q));
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL020 — sim-layer include discipline
// ----------------------------------------------------------------------

TEST(TblintSimLayering, SimIncludingHarnessFires)
{
    const auto fs = lintContent("src/sim/core.cc",
                                "#include \"harness/experiment.hh\"\n");
    EXPECT_EQ(countRule(fs, "TBL020"), 1u);
}

TEST(TblintSimLayering, SimIncludingObsFires)
{
    const auto fs = lintContent("src/sim/core.cc",
                                "#include \"obs/trace.hh\"\n");
    EXPECT_EQ(countRule(fs, "TBL020"), 1u);
}

TEST(TblintSimLayering, HarnessIncludingObsIsClean)
{
    // The rule polices src/sim only; upper layers may look down.
    const auto fs = lintContent("src/harness/obs_capture.cc",
                                "#include \"obs/trace.hh\"\n");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintSimLayering, SimIncludingSimIsClean)
{
    const auto fs = lintContent("src/sim/core.cc",
                                "#include \"sim/event_queue.hh\"\n");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintSimLayering, AllowSilences)
{
    const auto fs = lintContent(
        "src/sim/core.cc",
        "// tblint-allow(TBL020): transitional, tracked in ROADMAP\n"
        "#include \"obs/trace.hh\"\n");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL021 — trace emission outside a TB_TRACED guard
// ----------------------------------------------------------------------

TEST(TblintUnguardedTrace, BareEmissionFires)
{
    const auto fs = lintContent("src/mem/bus.cc", R"tb(
        void Bus::note(obs::TraceSink* sink) {
            sink->instant(obs::kSim, now_, "grant");
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL021"), 1u);
}

TEST(TblintUnguardedTrace, GuardedBlockIsClean)
{
    const auto fs = lintContent("src/mem/bus.cc", R"tb(
        void Bus::note(obs::TraceSink* sink) {
            if (TB_TRACED(sink, obs::kSim)) {
                sink->instant(obs::kSim, now_, "grant");
            }
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUnguardedTrace, GuardedSingleStatementIsClean)
{
    const auto fs = lintContent("src/mem/bus.cc", R"tb(
        void Bus::note(obs::TraceSink* sink) {
            if (TB_TRACED(sink, obs::kSim))
                sink->instant(obs::kSim, now_, "grant");
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUnguardedTrace, GuardDoesNotLeakPastItsBlock)
{
    const auto fs = lintContent("src/mem/bus.cc", R"tb(
        void Bus::note(obs::TraceSink* sink) {
            if (TB_TRACED(sink, obs::kSim)) { mark(); }
            sink->instant(obs::kSim, now_, "grant");
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL021"), 1u);
}

TEST(TblintUnguardedTrace, ObsLayerIsExempt)
{
    const auto fs = lintContent("src/obs/trace.cc", R"tb(
        void TraceQueueObserver::flush(TraceSink* sink) {
            sink->instant(kSim, now_, "flush");
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUnguardedTrace, AllowSilences)
{
    const auto fs = lintContent("src/mem/bus.cc", R"tb(
        void Bus::note(obs::TraceSink* sink) {
            // tblint-allow(TBL021): sink is null unless tracing built
            sink->instant(obs::kSim, now_, "grant");
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL022 — cross-partition queue access outside the channel API
// ----------------------------------------------------------------------

TEST(TblintUnsafeQueue, HarnessCallSiteFires)
{
    const auto fs = lintContent("src/harness/model.cc", R"tb(
        void Model::poke(pdes::Partition& other) {
            other.unsafeQueue().schedule(when_, fn_);
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL022"), 1u);
}

TEST(TblintUnsafeQueue, PointerCallSiteFires)
{
    const auto fs = lintContent("bench/micro.cc", R"tb(
        void drive(pdes::Partition* p) {
            p->unsafeQueue().run();
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL022"), 1u);
}

TEST(TblintUnsafeQueue, SimLayerIsExempt)
{
    // The engine itself wires queues; the rule polices the layers
    // above it.
    const auto fs = lintContent("src/sim/pdes.cc", R"tb(
        void Engine::wire(Partition& p) {
            p.unsafeQueue().setObserver(obs_);
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUnsafeQueue, UnrelatedIdentifierIsClean)
{
    // A declaration or mention without a member call is not a
    // call site.
    const auto fs = lintContent("src/harness/model.cc", R"tb(
        EventQueue& unsafeQueue();
        void note() { log("unsafeQueue is owner-confined"); }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintUnsafeQueue, AllowSilences)
{
    const auto fs = lintContent("src/harness/model.cc", R"tb(
        void Model::wire(pdes::Partition& mine) {
            // tblint-allow(TBL022): queue of this model's own partition
            mine.unsafeQueue().setObserver(obs_);
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL023 — raw POSIX I/O in src/svc
// ----------------------------------------------------------------------

TEST(TblintRawPosixIo, RawReadInSvcFires)
{
    const auto fs = lintContent("src/svc/conn.cc", R"tb(
        ssize_t pull(int fd, char* buf, size_t n) {
            return ::read(fd, buf, n);
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL023"), 1u);
}

TEST(TblintRawPosixIo, RawPollAndAcceptFire)
{
    const auto fs = lintContent("src/svc/loop.cc", R"tb(
        void serve(int lfd, struct pollfd* fds, size_t n) {
            (void)::poll(fds, n, 100);
            (void)::accept(lfd, nullptr, nullptr);
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL023"), 2u);
}

TEST(TblintRawPosixIo, NamespacedReadIsClean)
{
    // `foo::read(` is a namespaced API, not the libc call; method
    // calls and bare declarations are equally out of scope.
    const auto fs = lintContent("src/svc/codec.cc", R"tb(
        void load(Decoder& d, io::Source& src) {
            io::read(src, &d);
            d.read();
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintRawPosixIo, OutsideSvcIsExempt)
{
    // posix_io.cc itself (src/harness) is where the raw calls live.
    const auto fs = lintContent("src/harness/posix_io.cc", R"tb(
        ssize_t readSome(int fd, char* buf, size_t n) {
            return ::read(fd, buf, n);
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintRawPosixIo, AllowSilences)
{
    const auto fs = lintContent("src/svc/conn.cc", R"tb(
        void drain(int fd, char* buf, size_t n) {
            // tblint-allow(TBL023): EOF probe where EINTR is handled by the caller
            (void)::read(fd, buf, n);
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// TBL024 — direct Network::send above the fabric
// ----------------------------------------------------------------------

TEST(TblintRawNocSend, MemberCallOnNetworkReferenceFires)
{
    const auto fs = lintContent("src/thrifty/notifier.cc", R"tb(
        void Notifier::ping(noc::Network& net, NodeId a, NodeId b) {
            net.send(a, b, 8, [] {});
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL024"), 1u);
}

TEST(TblintRawNocSend, DeclInCompanionHeaderIsSeen)
{
    // The member lives in the .hh, the call in the .cc.
    const auto fs = lintContent(
        "src/mem/router_glue.cc",
        R"tb(
        void Glue::push(NodeId a, NodeId b) {
            net_.send(a, b, 72, [] {});
        }
        )tb",
        R"tb(
        class Glue {
            noc::Network& net_;
        };
        )tb");
    EXPECT_EQ(countRule(fs, "TBL024"), 1u);
}

TEST(TblintRawNocSend, QualifiedSpellingFires)
{
    const auto fs = lintContent("src/mem/a.cc", R"tb(
        void poke(noc::Network* n) {
            (n->*(&noc::Network::send))(0, 1, 8, [] {});
        }
    )tb");
    EXPECT_EQ(countRule(fs, "TBL024"), 1u);
}

TEST(TblintRawNocSend, FabricAndPartitionSendsAreClean)
{
    // Fabric wrappers and PDES channel sends share the method name
    // but not the receiver type.
    const auto fs = lintContent("src/thrifty/notifier.cc", R"tb(
        void Notifier::ping(mem::Fabric& fab, pdes::Partition& p) {
            fab.sendControl(0, 1, 8, [] {});
            p.send(1, when_, [] {});
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintRawNocSend, DeliverAliasDoesNotPoisonNames)
{
    // `Network::Deliver fn` declares a callback, not a network.
    const auto fs = lintContent("src/mem/a.cc", R"tb(
        void stash(noc::Network::Deliver fn, Chan& chan) {
            chan.send(std::move(fn));
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintRawNocSend, OutsideProtocolLayersIsExempt)
{
    // The NoC's own tests and the harness drive Network::send freely.
    const auto fs = lintContent("src/noc/network.cc", R"tb(
        void Network::retire(noc::Network& peer) {
            peer.send(0, 1, 8, [] {});
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintRawNocSend, AllowSilences)
{
    const auto fs = lintContent("src/mem/fabric_like.cc", R"tb(
        void Wrapper::fire(noc::Network& net) {
            // tblint-allow(TBL024): this IS the sanctioned wrapper
            net.send(0, 1, 8, [] {});
        }
    )tb");
    EXPECT_TRUE(fs.empty());
}

// ----------------------------------------------------------------------
// Engine plumbing
// ----------------------------------------------------------------------

TEST(TblintEngine, CatalogIsSortedAndStable)
{
    const auto& rules = tblint::ruleCatalog();
    ASSERT_FALSE(rules.empty());
    for (std::size_t i = 1; i < rules.size(); ++i)
        EXPECT_LT(std::string(rules[i - 1].id), rules[i].id);
}

TEST(TblintEngine, FindingsSortedByLine)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        std::random_device rd;
        auto t0 = std::chrono::steady_clock::now();
    )tb");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_LT(fs[0].line, fs[1].line);
}

TEST(TblintEngine, MultiRuleAllowSilencesBoth)
{
    const auto fs = lintContent("src/a.cc", R"tb(
        // tblint-allow(TBL002, TBL003): fixture exercises both ids
        auto k = reinterpret_cast<std::uintptr_t>(&rd); auto t = time(nullptr);
    )tb");
    EXPECT_TRUE(fs.empty());
}

TEST(TblintEngine, MissingFileYieldsIoFinding)
{
    const auto fs =
        tblint::lintFile("definitely/not/a/real/path.cc");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "IO");
}

} // namespace
