/**
 * @file
 * TBF1 frame protocol tests: payload builder/reader round trips,
 * encode/decode through the incremental FrameReader at every chunk
 * boundary, blocking send/recv over a socketpair, and the malformed-
 * header paths (bad magic, wrong version, oversized payload) that
 * must poison a connection instead of desynchronizing it.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "svc/frame.hh"

namespace tb {
namespace {

using svc::appendString;
using svc::appendU64;
using svc::Frame;
using svc::FrameReader;
using svc::FrameType;
using svc::PayloadReader;

TEST(SvcPayload, U64AndStringRoundTrip)
{
    std::string binary = "artifact with ";
    binary += '\0';
    binary += " byte inside";

    std::string p;
    appendU64(&p, 0);
    appendU64(&p, 0xdeadbeefcafef00dull);
    appendString(&p, "");
    appendString(&p, binary);
    appendU64(&p, 42);

    PayloadReader r(p);
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_EQ(r.u64(), 0xdeadbeefcafef00dull);
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), binary);
    EXPECT_EQ(r.u64(), 42u);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.exhausted());
}

TEST(SvcPayload, OverrunSetsNotOk)
{
    std::string p;
    appendU64(&p, 7);
    PayloadReader r(p);
    EXPECT_EQ(r.u64(), 7u);
    EXPECT_EQ(r.u64(), 0u) << "past-the-end read yields zero";
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.exhausted());
}

TEST(SvcPayload, TruncatedStringSetsNotOk)
{
    std::string p;
    appendString(&p, "hello");
    p.resize(p.size() - 2); // sever the string body
    PayloadReader r(p);
    (void)r.str();
    EXPECT_FALSE(r.ok());
}

TEST(SvcFrame, EncodeHeaderShape)
{
    std::string payload;
    appendU64(&payload, 5);
    const std::string wire =
        svc::encodeFrame(FrameType::Heartbeat, payload);
    ASSERT_EQ(wire.size(), 12u + payload.size());
    EXPECT_EQ(wire.compare(0, 4, "TBF1"), 0);
    // version 1, little-endian
    EXPECT_EQ(static_cast<unsigned char>(wire[4]), 1u);
    EXPECT_EQ(static_cast<unsigned char>(wire[5]), 0u);
    // type Heartbeat = 3
    EXPECT_EQ(static_cast<unsigned char>(wire[6]), 3u);
    // length 8
    EXPECT_EQ(static_cast<unsigned char>(wire[8]), 8u);
}

TEST(SvcFrame, ReaderDecodesAtEveryChunkBoundary)
{
    std::string payload;
    appendU64(&payload, 9);
    appendString(&payload, "result bytes");
    const std::string wire =
        svc::encodeFrame(FrameType::Result, payload) +
        svc::encodeFrame(FrameType::Goodbye, "") +
        svc::encodeFrame(FrameType::Heartbeat, std::string(8, '\0'));

    // Split the stream at every possible boundary: framing must not
    // depend on how poll() happened to chunk the bytes.
    for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
        FrameReader reader;
        std::vector<Frame> frames;
        ASSERT_TRUE(reader.feed(wire.data(), cut, &frames));
        ASSERT_TRUE(reader.feed(wire.data() + cut, wire.size() - cut,
                                &frames));
        ASSERT_EQ(frames.size(), 3u) << "cut at " << cut;
        EXPECT_EQ(frames[0].type, FrameType::Result);
        EXPECT_EQ(frames[0].payload, payload);
        EXPECT_EQ(frames[1].type, FrameType::Goodbye);
        EXPECT_TRUE(frames[1].payload.empty());
        EXPECT_EQ(frames[2].type, FrameType::Heartbeat);
    }
}

TEST(SvcFrame, BadMagicPoisonsReader)
{
    std::string wire = svc::encodeFrame(FrameType::Goodbye, "");
    wire[0] = 'X';
    FrameReader reader;
    std::vector<Frame> frames;
    EXPECT_FALSE(reader.feed(wire.data(), wire.size(), &frames));
    EXPECT_TRUE(frames.empty());
    EXPECT_FALSE(reader.error().empty());
    // Once poisoned, even good bytes are refused: framing is
    // unrecoverable after desync.
    const std::string good = svc::encodeFrame(FrameType::Goodbye, "");
    EXPECT_FALSE(reader.feed(good.data(), good.size(), &frames));
}

TEST(SvcFrame, WrongVersionRejected)
{
    std::string wire = svc::encodeFrame(FrameType::Goodbye, "");
    wire[4] = 2; // future protocol version
    FrameReader reader;
    std::vector<Frame> frames;
    EXPECT_FALSE(reader.feed(wire.data(), wire.size(), &frames));
    EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST(SvcFrame, OversizedPayloadRejected)
{
    std::string wire = svc::encodeFrame(FrameType::Goodbye, "");
    // Forge length = 0xffffffff: must be refused before allocation.
    std::memset(&wire[8], 0xff, 4);
    FrameReader reader;
    std::vector<Frame> frames;
    EXPECT_FALSE(reader.feed(wire.data(), wire.size(), &frames));
    EXPECT_FALSE(reader.error().empty());
}

TEST(SvcFrame, SendRecvOverSocketpair)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    std::string payload;
    appendU64(&payload, 3);
    appendString(&payload, "over the wire");
    ASSERT_TRUE(svc::sendFrame(sv[0], FrameType::Result, payload));

    Frame f;
    std::string err;
    ASSERT_EQ(svc::recvFrame(sv[1], &f, &err), 1) << err;
    EXPECT_EQ(f.type, FrameType::Result);
    EXPECT_EQ(f.payload, payload);

    // Clean close on one end is EOF (0), not an error, on the other.
    ::close(sv[0]);
    EXPECT_EQ(svc::recvFrame(sv[1], &f, &err), 0);
    ::close(sv[1]);
}

TEST(SvcFrame, RecvRejectsGarbageHeader)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const char garbage[12] = {'n', 'o', 't', 'a', 'f', 'r',
                              'a', 'm', 'e', '!', '!', '!'};
    ASSERT_EQ(::write(sv[0], garbage, sizeof(garbage)),
              static_cast<ssize_t>(sizeof(garbage)));
    Frame f;
    std::string err;
    EXPECT_EQ(svc::recvFrame(sv[1], &f, &err), -1);
    EXPECT_FALSE(err.empty());
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(SvcFrame, TypeNamesCoverProtocol)
{
    EXPECT_STREQ(svc::frameTypeName(FrameType::Hello), "hello");
    EXPECT_STREQ(svc::frameTypeName(FrameType::LeaseGrant),
                 "lease-grant");
    EXPECT_STREQ(svc::frameTypeName(FrameType::Reject), "reject");
}

} // namespace
} // namespace tb
