/**
 * @file
 * CampaignJournal + result serde tests: record/lookup round trips,
 * resume replaying stored bytes verbatim (via the supervisor), torn
 * and corrupt journal lines being skipped, config-hash mismatches
 * forcing reruns, atomic artifact writes, and the lossless
 * ExperimentResult one-line serialization the journal carries.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "harness/experiment.hh"
#include "harness/result_serde.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace {

using harness::CampaignJournal;
using harness::CampaignSupervisor;
using harness::fnv1a64;
using harness::PointOutcome;
using harness::PointTask;
using harness::SupervisorPolicy;
using harness::SupervisorReport;
using harness::writeFileAtomic;

std::string
tempPath(const std::string& name)
{
    const std::string p = testing::TempDir() + "tb_" + name;
    std::remove(p.c_str());
    return p;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Fnv1a64, ReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
    EXPECT_NE(fnv1a64("config-a"), fnv1a64("config-b"));
}

TEST(WriteFileAtomic, WritesAndReplacesWithoutTempResidue)
{
    const std::string path = tempPath("atomic.txt");
    writeFileAtomic(path, "first\n");
    EXPECT_EQ(slurp(path), "first\n");
    writeFileAtomic(path, "second, longer content\n");
    EXPECT_EQ(slurp(path), "second, longer content\n");
    // The staging file must not survive a successful rename.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(WriteFileAtomic, ThrowsOnUnwritablePath)
{
    EXPECT_THROW(
        writeFileAtomic("/nonexistent-dir/deep/artifact.json", "x"),
        FatalError);
}

TEST(CampaignJournal, RecordThenResumeLookup)
{
    const std::string path = tempPath("journal_roundtrip.jsonl");
    // Results with JSON-hostile bytes: quotes, backslashes, newlines.
    const std::string tricky = "line1\nline2\t\"quoted\" back\\slash";
    {
        CampaignJournal j;
        j.open(path, /*resume=*/false);
        ASSERT_TRUE(j.active());
        j.record(0, 0x1111, 7, "plain result");
        j.record(3, 0x3333, 9, tricky);
    }
    CampaignJournal j;
    j.open(path, /*resume=*/true);
    EXPECT_EQ(j.loaded(), 2u);

    std::string out;
    ASSERT_TRUE(j.lookup(0, 0x1111, &out));
    EXPECT_EQ(out, "plain result");
    ASSERT_TRUE(j.lookup(3, 0x3333, &out));
    EXPECT_EQ(out, tricky);

    // Wrong config hash or unknown index never satisfies a lookup.
    EXPECT_FALSE(j.lookup(0, 0x2222, &out));
    EXPECT_FALSE(j.lookup(1, 0x1111, &out));
    std::remove(path.c_str());
}

TEST(CampaignJournal, OpenWithoutResumeTruncates)
{
    const std::string path = tempPath("journal_truncate.jsonl");
    {
        CampaignJournal j;
        j.open(path, false);
        j.record(0, 1, 1, "stale");
    }
    CampaignJournal j;
    j.open(path, /*resume=*/false);
    EXPECT_EQ(j.loaded(), 0u);
    std::string out;
    EXPECT_FALSE(j.lookup(0, 1, &out));
    std::remove(path.c_str());
}

TEST(CampaignJournal, SkipsTornAndCorruptLines)
{
    const std::string path = tempPath("journal_corrupt.jsonl");
    {
        CampaignJournal j;
        j.open(path, false);
        j.record(0, 0xaaaa, 1, "good-0");
        j.record(1, 0xbbbb, 2, "good-1");
    }
    {
        // Tamper: a non-JSON line, a result whose checksum no longer
        // matches, and a torn trailing record (killed mid-write).
        std::string contents = slurp(path);
        std::string forged = contents.substr(
            contents.find('\n') + 1,
            contents.rfind('\n') - contents.find('\n') - 1);
        const auto at = forged.find("good-1");
        ASSERT_NE(at, std::string::npos);
        forged.replace(at, 6, "evil-x");
        const auto pt = forged.find("\"point\": 1");
        ASSERT_NE(pt, std::string::npos);
        forged.replace(pt, 10, "\"point\": 5");
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "this is not a journal record\n"
            << forged << "\n"
            << "{\"point\": 9, \"config\": \"00";
    }
    CampaignJournal j;
    j.open(path, /*resume=*/true);
    EXPECT_EQ(j.loaded(), 2u);
    std::string out;
    EXPECT_TRUE(j.lookup(0, 0xaaaa, &out));
    EXPECT_EQ(out, "good-0");
    EXPECT_TRUE(j.lookup(1, 0xbbbb, &out));
    EXPECT_EQ(out, "good-1");
    EXPECT_FALSE(j.lookup(5, 0xbbbb, &out)) << "checksum must gate";
    EXPECT_FALSE(j.lookup(9, 0, &out)) << "torn line must be ignored";
    std::remove(path.c_str());
}

TEST(CampaignJournal, DuplicateIdenticalLinesTolerated)
{
    // The same record twice (resume after a crash between fflush and
    // exit, journal appended across runs) is benign: same bytes, last
    // one wins, counted once.
    const std::string path = tempPath("journal_dup.jsonl");
    {
        CampaignJournal j;
        j.open(path, false);
        j.record(0, 0xaaaa, 1, "same");
    }
    const std::string one = slurp(path);
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << one;
    }
    CampaignJournal j;
    j.open(path, /*resume=*/true);
    EXPECT_EQ(j.loaded(), 1u);
    std::string out;
    EXPECT_TRUE(j.lookup(0, 0xaaaa, &out));
    EXPECT_EQ(out, "same");
    std::remove(path.c_str());
}

TEST(CampaignJournal, ConflictingConfigHashesRejected)
{
    // Two campaigns (or two concurrent daemons) sharing one journal
    // file: the same point under different config hashes. Silently
    // keeping either entry would poison every later resume, so open()
    // must refuse with a diagnostic naming the point and both hashes.
    const std::string path = tempPath("journal_conflict_cfg.jsonl");
    {
        CampaignJournal j;
        j.open(path, false);
        j.record(2, 0x1111, 1, "campaign A bytes");
    }
    {
        CampaignJournal j;
        j.open(path, /*resume=*/true);
        j.record(2, 0x2222, 1, "campaign B bytes");
    }
    CampaignJournal j;
    try {
        j.open(path, /*resume=*/true);
        FAIL() << "conflicting config hashes must be rejected";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("point 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("0000000000001111"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("0000000000002222"), std::string::npos)
            << msg;
    }
    std::remove(path.c_str());
}

TEST(CampaignJournal, ConflictingResultsRejected)
{
    // Same point, same config hash, different result bytes: either
    // concurrent writers interleaved or a point is nondeterministic.
    // Both make the journal unusable for byte-identical resume.
    const std::string path = tempPath("journal_conflict_res.jsonl");
    {
        CampaignJournal j;
        j.open(path, false);
        j.record(0, 0xaaaa, 1, "first bytes");
    }
    {
        CampaignJournal j;
        j.open(path, /*resume=*/true);
        j.record(0, 0xaaaa, 1, "second bytes");
    }
    CampaignJournal j;
    EXPECT_THROW(j.open(path, /*resume=*/true), FatalError);
    std::remove(path.c_str());
}

TEST(CampaignJournal, TornFinalLineFuzz)
{
    // A writer can die at any byte of the final record (ENOSPC,
    // SIGKILL). Whatever the cut point, open(resume) must neither
    // crash nor resurrect the torn record — the intact prefix loads,
    // the torn tail is simply rerun.
    const std::string path = tempPath("journal_torn_fuzz.jsonl");
    const std::string tricky = "r\"quote\\slash\nnewline\ttab";
    std::string full;
    {
        CampaignJournal j;
        j.open(path, false);
        j.record(0, 0xaaaa, 1, "intact first record");
        j.record(1, 0xbbbb, 2, tricky);
        full = slurp(path);
    }
    const std::size_t first_nl = full.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    for (std::size_t cut = first_nl + 1; cut < full.size(); ++cut) {
        writeFileAtomic(path, full.substr(0, cut));
        CampaignJournal j;
        j.open(path, /*resume=*/true);
        std::string out;
        EXPECT_TRUE(j.lookup(0, 0xaaaa, &out)) << "cut at " << cut;
        EXPECT_EQ(out, "intact first record");
        if (cut == full.size() - 1) {
            // Only the trailing newline is missing: the record itself
            // is complete and checksummed, so it legitimately loads.
            EXPECT_EQ(j.loaded(), 2u);
            EXPECT_TRUE(j.lookup(1, 0xbbbb, &out));
            EXPECT_EQ(out, tricky);
        } else {
            EXPECT_EQ(j.loaded(), 1u) << "cut at " << cut;
            EXPECT_FALSE(j.lookup(1, 0xbbbb, &out))
                << "cut at " << cut;
        }
    }
    std::remove(path.c_str());
}

TEST(CampaignJournal, DaemonWriterRecoveryFuzz)
{
    // The daemon's crash/restart write pattern: every restart may
    // re-append records the previous incarnation already journaled
    // (crash between fflush and exit), in arbitrary interleavings,
    // and the final incarnation can die mid-line. Whatever the seed
    // produces, resume must load every point exactly once with its
    // original bytes and never resurrect the torn tail.
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        tb::Random rng(seed);
        const std::string path =
            tempPath("journal_recovery_fuzz.jsonl");
        {
            CampaignJournal j;
            j.open(path, false);
            for (std::size_t p = 0; p < 5; ++p)
                j.record(p, 0x100 + p, p,
                         "bytes:" + std::to_string(p));
        }
        std::vector<std::string> lines;
        {
            std::istringstream in(slurp(path));
            for (std::string l; std::getline(in, l);)
                lines.push_back(l);
        }
        ASSERT_EQ(lines.size(), 5u);
        {
            std::ofstream out(path,
                              std::ios::app | std::ios::binary);
            for (int k = 0; k < 8; ++k)
                out << lines[rng.uniformInt(lines.size())] << "\n";
            const std::string& torn =
                lines[rng.uniformInt(lines.size())];
            out << torn.substr(0,
                               1 + rng.uniformInt(torn.size() - 1));
        }
        CampaignJournal j;
        j.open(path, /*resume=*/true);
        EXPECT_EQ(j.loaded(), 5u) << "seed " << seed;
        std::string out;
        for (std::size_t p = 0; p < 5; ++p) {
            ASSERT_TRUE(j.lookup(p, 0x100 + p, &out))
                << "seed " << seed << " point " << p;
            EXPECT_EQ(out, "bytes:" + std::to_string(p));
        }
        std::remove(path.c_str());
    }
}

TEST(CampaignJournal, InterleavedConflictStillFatal)
{
    // A same-index record under a different config hash is fatal even
    // when buried mid-stream between benign duplicate lines — dedup
    // must not skim past it.
    const std::string path = tempPath("journal_mid_conflict.jsonl");
    {
        CampaignJournal j;
        j.open(path, false);
        j.record(1, 0x1111, 1, "campaign A bytes");
    }
    const std::string good = slurp(path);
    std::string conflicting;
    {
        const std::string other =
            tempPath("journal_mid_conflict_other.jsonl");
        CampaignJournal j;
        j.open(other, false);
        j.record(1, 0x2222, 1, "campaign B bytes");
        conflicting = slurp(other);
        std::remove(other.c_str());
    }
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << good << conflicting << good;
    }
    CampaignJournal j;
    EXPECT_THROW(j.open(path, /*resume=*/true), FatalError);
    std::remove(path.c_str());
}

/**
 * The resume contract end to end through the supervisor: a first run
 * completes half the campaign (the rest fails), a second run with
 * --resume semantics replays the journaled half *verbatim from disk*
 * — proven by having the second run's point function produce
 * different bytes — and only reruns the missing points.
 */
TEST(CampaignJournal, SupervisorResumeReplaysStoredBytes)
{
    const std::string path = tempPath("journal_resume.jsonl");
    const auto key = [](std::size_t i) {
        return fnv1a64("resume-test|" + std::to_string(i));
    };

    {
        CampaignJournal j;
        j.open(path, false);
        CampaignSupervisor sup{SupervisorPolicy{}};
        sup.attachJournal(&j);
        PointTask task;
        task.key = key;
        task.run = [](std::size_t i) -> std::string {
            if (i >= 3)
                throw std::runtime_error("first run fails the tail");
            return "r:" + std::to_string(i) + ":gen1";
        };
        const SupervisorReport r = sup.run(6, task);
        EXPECT_EQ(r.count(PointOutcome::Ok), 3u);
        EXPECT_EQ(r.count(PointOutcome::Exception), 3u);
    }

    CampaignJournal j;
    j.open(path, /*resume=*/true);
    EXPECT_EQ(j.loaded(), 3u);
    CampaignSupervisor sup{SupervisorPolicy{}};
    sup.attachJournal(&j);
    PointTask task;
    task.key = key;
    task.run = [](std::size_t i) {
        // gen2 bytes: if a journaled point reran, we would see them.
        return "r:" + std::to_string(i) + ":gen2";
    };
    const SupervisorReport r = sup.run(6, task);
    EXPECT_EQ(r.count(PointOutcome::Journaled), 3u);
    EXPECT_EQ(r.count(PointOutcome::Ok), 3u);
    EXPECT_TRUE(r.ok());
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(sup.results()[i],
                  "r:" + std::to_string(i) + ":gen1")
            << "journaled point reran";
    for (std::size_t i = 3; i < 6; ++i)
        EXPECT_EQ(sup.results()[i],
                  "r:" + std::to_string(i) + ":gen2");
    std::remove(path.c_str());
}

TEST(CampaignJournal, ConfigHashMismatchForcesRerun)
{
    const std::string path = tempPath("journal_confighash.jsonl");
    {
        CampaignJournal j;
        j.open(path, false);
        CampaignSupervisor sup{SupervisorPolicy{}};
        sup.attachJournal(&j);
        PointTask task;
        task.key = [](std::size_t) { return fnv1a64("quick-sweep"); };
        task.run = [](std::size_t i) {
            return "quick:" + std::to_string(i);
        };
        EXPECT_TRUE(sup.run(4, task).ok());
    }
    // Same journal, different campaign shape (other config hash): a
    // stale journal must never leak results into the new sweep.
    CampaignJournal j;
    j.open(path, /*resume=*/true);
    EXPECT_EQ(j.loaded(), 4u);
    CampaignSupervisor sup{SupervisorPolicy{}};
    sup.attachJournal(&j);
    PointTask task;
    task.key = [](std::size_t) { return fnv1a64("full-sweep"); };
    task.run = [](std::size_t i) {
        return "full:" + std::to_string(i);
    };
    const SupervisorReport r = sup.run(4, task);
    EXPECT_EQ(r.count(PointOutcome::Journaled), 0u);
    EXPECT_EQ(r.count(PointOutcome::Ok), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(sup.results()[i], "full:" + std::to_string(i));
    std::remove(path.c_str());
}

TEST(ResultSerde, RealExperimentRoundTripsLosslessly)
{
    workloads::AppProfile app = workloads::appByName("Radiosity");
    app.iterations = 3;
    harness::SystemConfig sys = harness::SystemConfig::small(2);
    sys.seed = 5;
    const harness::ExperimentResult r =
        harness::runExperiment(sys, app, harness::ConfigKind::Thrifty);

    const std::string line = harness::serializeResult(r);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const harness::ExperimentResult back =
        harness::deserializeResult(line);

    EXPECT_EQ(back.app, r.app);
    EXPECT_EQ(back.config, r.config);
    EXPECT_EQ(back.execTime, r.execTime);
    EXPECT_EQ(back.totalEnergy(), r.totalEnergy());
    EXPECT_EQ(back.sync.instances, r.sync.instances);
    EXPECT_EQ(back.sync.sleeps, r.sync.sleeps);
    EXPECT_EQ(back.sync.spins, r.sync.spins);

    // Idempotence covers every field the line carries, bit for bit —
    // the byte-identical resume artifact rests on exactly this.
    EXPECT_EQ(harness::serializeResult(back), line);
}

TEST(ResultSerde, EscapedStringsSurviveJournalRoundTrip)
{
    // The serde and journal now share obs::JsonWriter's escape policy;
    // every escape class it can emit must come back byte-exact through
    // a serialize -> journal record -> resume -> deserialize cycle.
    harness::ExperimentResult r;
    r.app = "quote\" slash\\ nl\n tab\t cr\r ctl\x01 end";
    r.config = "Thrifty";
    r.execTime = 123;
    r.threads = 4;
    r.faultSpec = "spec with \"quotes\" and \\u0007: \x07";

    const std::string line = harness::serializeResult(r);
    const std::string path = tempPath("escape_journal.jsonl");
    {
        CampaignJournal j;
        j.open(path, /*resume=*/false);
        j.record(0, fnv1a64("k"), 1, line);
    }
    CampaignJournal j;
    j.open(path, /*resume=*/true);
    ASSERT_EQ(j.loaded(), 1u);
    std::string replayed;
    ASSERT_TRUE(j.lookup(0, fnv1a64("k"), &replayed));
    EXPECT_EQ(replayed, line);

    const harness::ExperimentResult back =
        harness::deserializeResult(replayed);
    EXPECT_EQ(back.app, r.app);
    EXPECT_EQ(back.faultSpec, r.faultSpec);
    EXPECT_EQ(harness::serializeResult(back), line);
    std::remove(path.c_str());
}

TEST(ResultSerde, RejectsMalformedInput)
{
    EXPECT_THROW(harness::deserializeResult(""), FatalError);
    EXPECT_THROW(harness::deserializeResult("BOGUS1 app=\"x\""),
                 FatalError);
    EXPECT_THROW(harness::deserializeResult("TBRESULT1 app=\"x\""),
                 FatalError);
}

} // namespace
} // namespace tb
