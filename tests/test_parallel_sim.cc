/**
 * @file
 * Tests of the multi-threaded single-simulation driver
 * (harness/parallel_sim.hh): the --sim-threads option scan, the
 * PdesRunReport bookkeeping and — the contract that matters — real
 * experiments whose serialized results are byte-identical at any
 * worker thread count. The engine itself is covered by test_pdes.cc.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "harness/parallel_sim.hh"
#include "harness/result_serde.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace harness {
namespace {

TEST(ParallelSim, ParseSimThreadsArg)
{
    const char* none[] = {"prog"};
    const char* pair[] = {"prog", "--sim-threads", "4"};
    const char* eq[] = {"prog", "--sim-threads=8"};
    const char* mixed[] = {"prog", "--quick", "--sim-threads", "2"};
    auto parse = [](const char** argv, int argc) {
        return parseSimThreadsArg(argc, const_cast<char**>(argv));
    };
    EXPECT_EQ(parse(none, 1), 1u);
    EXPECT_EQ(parse(pair, 3), 4u);
    EXPECT_EQ(parse(eq, 2), 8u);
    EXPECT_EQ(parse(mixed, 4), 2u);
}

TEST(ParallelSimDeathTest, ParseSimThreadsArgRejectsMalformed)
{
    // Same contract as --jobs: `--sim-threads 4x` must be a usage
    // error (exit 2), never a silent fallback to the serial engine.
    auto parse = [](const char** argv, int argc) {
        parseSimThreadsArg(argc, const_cast<char**>(argv));
    };
    const char* garbage[] = {"prog", "--sim-threads", "garbage"};
    const char* trailing[] = {"prog", "--sim-threads", "4x"};
    const char* zero[] = {"prog", "--sim-threads=0"};
    const char* neg[] = {"prog", "--sim-threads=-2"};
    const char* empty[] = {"prog", "--sim-threads="};
    EXPECT_EXIT(parse(garbage, 3), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(trailing, 3), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(zero, 2), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(neg, 2), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(empty, 2), testing::ExitedWithCode(2),
                "not a positive integer");
}

TEST(ParallelSim, ParseSimPartitionsArg)
{
    // Absent means 0 — "pick the default plan for the node count" —
    // which is distinct from an explicit --sim-partitions 1.
    const char* none[] = {"prog"};
    const char* pair[] = {"prog", "--sim-partitions", "8"};
    const char* eq[] = {"prog", "--sim-partitions=4"};
    const char* one[] = {"prog", "--sim-partitions", "1"};
    auto parse = [](const char** argv, int argc) {
        return parseSimPartitionsArg(argc, const_cast<char**>(argv));
    };
    EXPECT_EQ(parse(none, 1), 0u);
    EXPECT_EQ(parse(pair, 3), 8u);
    EXPECT_EQ(parse(eq, 2), 4u);
    EXPECT_EQ(parse(one, 3), 1u);
}

TEST(ParallelSimDeathTest, ParseSimPartitionsArgRejectsMalformed)
{
    auto parse = [](const char** argv, int argc) {
        parseSimPartitionsArg(argc, const_cast<char**>(argv));
    };
    const char* zero[] = {"prog", "--sim-partitions=0"};
    const char* junk[] = {"prog", "--sim-partitions", "2x"};
    EXPECT_EXIT(parse(zero, 2), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(junk, 3), testing::ExitedWithCode(2),
                "not a positive integer");
}

TEST(ParallelSim, ReportRecordsModelLookahead)
{
    // The conservative lookahead the partitioned model will use is
    // the NoC's minimum cross-node latency: marshal + pin-to-pin +
    // marshal = 16 + 16 + 16 ns on the default configuration.
    Machine m(SystemConfig::small(2));
    const PdesRunReport r = runMachinePdes(m, 1);
    EXPECT_EQ(r.threads, 1u);
    EXPECT_EQ(r.modelLookahead, 48 * kNanosecond);
    EXPECT_EQ(r.modelLookahead,
              m.memory().fabric().minMessageLatency());
}

TEST(ParallelSim, ThreadedDrainMatchesSerialFinalTick)
{
    // An empty machine drains immediately under either engine.
    Machine serial(SystemConfig::small(1));
    Machine threaded(SystemConfig::small(1));
    const PdesRunReport a = runMachinePdes(serial, 1);
    const PdesRunReport b = runMachinePdes(threaded, 4);
    EXPECT_EQ(a.finalTick, b.finalTick);
    EXPECT_EQ(b.threads, 4u);
    EXPECT_EQ(b.engine.partitions, 1u);
}

/**
 * The determinism contract end to end: a real experiment run under
 * the PDES engine must serialize byte-identically to the serial
 * reference, episode ledger and all. This is the same invariant the
 * CI pdes-determinism job checks on whole campaign artifacts.
 */
TEST(ParallelSim, ExperimentResultsByteIdenticalAcrossThreadCounts)
{
    const SystemConfig sys = SystemConfig::small(3);
    const workloads::AppProfile app = workloads::appByName("Volrend");

    const auto runAt = [&](unsigned threads) {
        RunOptions ro;
        ro.episodeLedger = true;
        ro.simThreads = threads;
        return serializeResult(
            runExperiment(sys, app, ConfigKind::Thrifty, ro));
    };

    const std::string serial = runAt(1);
    EXPECT_EQ(serial, runAt(2));
    EXPECT_EQ(serial, runAt(4));
}

TEST(ParallelSim, SixtyFourNodeMachineRunsEightRealPartitions)
{
    // The headline acceptance shape: a 64-node machine decomposes into
    // eight managed engine partitions, every cross-cluster channel
    // carrying the real (nonzero) pin-to-pin lookahead.
    Machine m(SystemConfig::small(6), 8);
    const PdesRunReport r = runMachinePdes(m, 2);
    EXPECT_EQ(r.partitions, 8u);
    EXPECT_EQ(r.engine.partitions, 8u);
    EXPECT_EQ(r.modelLookahead, m.config().noc.pinToPin);
    EXPECT_GT(r.modelLookahead, Tick{0});
}

/**
 * The partitioned plan's own determinism contract: with the partition
 * count fixed, the one-worker engine run is the plan's bit-exact
 * reference and adding workers must never change the serialized
 * result — stats and episode ledger included. A seeded scan over
 * (app, partition count) points keeps the property honest beyond one
 * hand-picked workload.
 */
TEST(ParallelSim, PartitionedExperimentByteIdenticalAcrossThreadCounts)
{
    const SystemConfig sys = SystemConfig::small(4); // 16 nodes
    std::uint64_t lcg = 0x2545f4914f6cdd1dull;
    const auto next = [&]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<unsigned>(lcg >> 33);
    };
    const char* apps[] = {"Volrend", "Radix", "Ocean"};
    for (int trial = 0; trial < 3; ++trial) {
        const workloads::AppProfile app =
            workloads::appByName(apps[next() % 3]);
        const unsigned parts = 1u << (1 + next() % 3); // 2, 4 or 8
        const auto runAt = [&](unsigned threads) {
            RunOptions ro;
            ro.episodeLedger = true;
            ro.simPartitions = parts;
            ro.simThreads = threads;
            return serializeResult(
                runExperiment(sys, app, ConfigKind::Thrifty, ro));
        };
        const std::string reference = runAt(1);
        EXPECT_EQ(reference, runAt(4))
            << app.name << " at " << parts << " partitions";
    }
}

} // namespace
} // namespace harness
} // namespace tb
