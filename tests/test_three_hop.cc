/**
 * @file
 * Tests for the DASH-style three-hop forwarding protocol variant:
 * identical observable semantics to hub-and-spoke, strictly lower
 * intervention latency, consistent directory state.
 */

#include <gtest/gtest.h>

#include <optional>

#include "harness/experiment.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace tb {
namespace {

using mem::DirState;
using mem::LineState;

struct Rig
{
    EventQueue eq;
    noc::Network net;
    mem::MemorySystem mem;
    Addr shared;

    explicit Rig(bool three_hop, unsigned dim = 2)
        : net(eq, netCfg(dim)), mem(eq, net, memCfg(three_hop))
    {
        shared = mem.addressMap().allocShared(64 * mem::kPageBytes);
    }

    static noc::NetworkConfig
    netCfg(unsigned dim)
    {
        noc::NetworkConfig c;
        c.dimension = dim;
        return c;
    }

    static mem::MemoryConfig
    memCfg(bool three_hop)
    {
        mem::MemoryConfig c;
        c.threeHopForwarding = three_hop;
        return c;
    }

    std::uint64_t
    loadSync(NodeId n, Addr a, Tick* latency = nullptr)
    {
        const Tick start = eq.now();
        std::optional<std::uint64_t> got;
        mem.controller(n).load(a, [&](std::uint64_t v) {
            got = v;
            if (latency)
                *latency = eq.now() - start;
        });
        eq.run();
        EXPECT_TRUE(got.has_value());
        return got.value_or(~0ull);
    }

    void
    storeSync(NodeId n, Addr a, std::uint64_t v)
    {
        bool done = false;
        mem.controller(n).store(a, v, [&]() { done = true; });
        eq.run();
        EXPECT_TRUE(done);
    }
};

TEST(ThreeHop, RemoteDirtyReadCorrectAndShared)
{
    Rig r(true);
    r.storeSync(0, r.shared, 0xabc);
    EXPECT_EQ(r.loadSync(1, r.shared), 0xabcu);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Shared);
    EXPECT_EQ(r.mem.controller(1).l2State(r.shared), LineState::Shared);
    const Addr line = mem::lineAddr(r.shared);
    auto& dir = r.mem.directory(r.mem.addressMap().home(line));
    EXPECT_EQ(dir.lineState(line), DirState::Shared);
    EXPECT_EQ(dir.lineSharers(line), 0b11u);
}

TEST(ThreeHop, RemoteDirtyWriteTransfersOwnership)
{
    Rig r(true);
    r.storeSync(0, r.shared, 1);
    r.storeSync(1, r.shared, 2);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Invalid);
    EXPECT_EQ(r.mem.controller(1).l2State(r.shared),
              LineState::Modified);
    EXPECT_EQ(r.loadSync(2, r.shared), 2u);
    const Addr line = mem::lineAddr(r.shared);
    auto& dir = r.mem.directory(r.mem.addressMap().home(line));
    // After node 2's read of node 1's dirty line: Shared{1, 2}.
    EXPECT_EQ(dir.lineState(line), DirState::Shared);
    EXPECT_EQ(dir.lineSharers(line), 0b110u);
}

TEST(ThreeHop, CleanExclusiveInterventionServedDirectly)
{
    Rig r(true);
    r.loadSync(0, r.shared); // E at node 0
    Tick lat = 0;
    EXPECT_EQ(r.loadSync(1, r.shared, &lat), 0u);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Shared);
    // No DRAM fetch on this path in 3-hop mode.
    EXPECT_GT(r.mem.controller(0).statistics().scalarValue(
                  "threeHopServes"),
              0.0);
}

TEST(ThreeHop, InterventionLatencyBeatsHubAndSpoke)
{
    // Pick nodes so requester, owner and home are pairwise distant.
    auto measure = [](bool three_hop) {
        Rig r(three_hop, 3); // 8 nodes
        // Find a line homed at node 7 (far from 0 and 1).
        Addr a = r.shared;
        while (r.mem.addressMap().home(a) != 7)
            a += mem::kPageBytes;
        r.storeSync(0, a, 5); // dirty at node 0
        Tick lat = 0;
        EXPECT_EQ(r.loadSync(1, a, &lat), 5u);
        return lat;
    };
    const Tick hub = measure(false);
    const Tick three = measure(true);
    EXPECT_LT(three, hub);
    // Roughly one network traversal saved.
    EXPECT_GT(hub - three, 30 * kNanosecond);
}

TEST(ThreeHop, ForwardedStoreSerializedAgainstQueuedReaders)
{
    // A reader queued at the home behind the forwarded write must see
    // the new value, even though the data went owner->requester
    // directly.
    Rig r(true, 3);
    const Addr a = r.shared;
    r.storeSync(0, a, 1); // M at node 0

    bool wrote = false;
    std::optional<std::uint64_t> read_val;
    // Issue the write and the read back to back; the read queues at
    // the home behind the write transaction.
    r.mem.controller(1).store(a, 2, [&]() { wrote = true; });
    r.mem.controller(2).load(a, [&](std::uint64_t v) { read_val = v; });
    r.eq.run();
    EXPECT_TRUE(wrote);
    ASSERT_TRUE(read_val.has_value());
    EXPECT_EQ(*read_val, 2u);
}

TEST(ThreeHop, AtomicsStayCoherent)
{
    Rig r(true);
    const Addr ctr = r.shared + 256;
    // Cache the line at a node first so the RMW needs an intervention.
    r.loadSync(3, ctr);
    std::vector<std::uint64_t> olds;
    for (NodeId n = 0; n < 4; ++n) {
        r.mem.controller(n).atomicRmw(
            ctr,
            [&r, ctr](tb::Tick) { return r.mem.backend().fetchAdd(ctr, 1); },
            [&](std::uint64_t old) { olds.push_back(old); });
    }
    r.eq.run();
    std::sort(olds.begin(), olds.end());
    EXPECT_EQ(olds, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(ThreeHop, RandomizedValueSemanticsMatchModel)
{
    Rig r(true, 3);
    Random rng(99);
    std::uint64_t model[8] = {};
    const Addr base = r.shared;
    for (int i = 0; i < 250; ++i) {
        const unsigned w = static_cast<unsigned>(rng.uniformInt(8));
        const Addr a = base + w * 1024;
        const NodeId n = static_cast<NodeId>(rng.uniformInt(8));
        if (rng.chance(0.5)) {
            r.storeSync(n, a, i + 1);
            model[w] = static_cast<std::uint64_t>(i + 1);
        } else {
            EXPECT_EQ(r.loadSync(n, a), model[w]) << "word " << w;
        }
    }
}

TEST(ThreeHop, FullExperimentMatchesHubAndSpokeShape)
{
    // The protocol variant must not change the thrifty barrier story.
    harness::SystemConfig sys = harness::SystemConfig::small(3);
    sys.memory.threeHopForwarding = true;
    workloads::AppProfile app;
    app.name = "mini";
    workloads::PhaseSpec p;
    p.pc = 0x1;
    p.meanCompute = 400 * kMicrosecond;
    p.imbalanceCv = 0.3;
    p.memAccesses = 8;
    app.loop.push_back(p);
    app.iterations = 8;

    const auto base =
        harness::runExperiment(sys, app, harness::ConfigKind::Baseline);
    const auto t =
        harness::runExperiment(sys, app, harness::ConfigKind::Thrifty);
    EXPECT_EQ(t.sync.instances, 8u);
    EXPECT_LT(t.totalEnergy(), base.totalEnergy());
    EXPECT_LT(static_cast<double>(t.execTime),
              1.05 * static_cast<double>(base.execTime));
}

} // namespace
} // namespace tb
