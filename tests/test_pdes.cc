/**
 * @file
 * Conservative PDES engine tests (sim/pdes.hh): channel/lookahead
 * contract enforcement, null-message progress at zero load,
 * cross-partition cancel semantics, the deterministic (time,
 * priority, partition, seq) tie-break, and a randomized
 * serial-vs-threaded equivalence stress.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/pdes.hh"
#include "sim/random.hh"

namespace {

using tb::EventQueue;
using tb::Tick;
using tb::pdes::Engine;
using tb::pdes::Partition;
using tb::pdes::PartitionId;
using tb::pdes::RemoteHandle;

Engine::Config
threaded(unsigned n)
{
    Engine::Config cfg;
    cfg.threads = n;
    return cfg;
}

TEST(Pdes, SinglePartitionRunsLikeSerial)
{
    Engine engine;
    Partition& p = engine.addPartition("solo");
    std::vector<Tick> order;
    p.schedule(30, [&] { order.push_back(30); });
    p.schedule(10, [&] {
        order.push_back(10);
        p.scheduleIn(5, [&] { order.push_back(15); });
    });
    engine.run();
    EXPECT_EQ(order, (std::vector<Tick>{10, 15, 30}));
    EXPECT_EQ(engine.stats().fired, 3u);
    EXPECT_EQ(engine.stats().finalTick, Tick{30});
}

TEST(Pdes, ExternalQueuePartitionDrainsIt)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] {
        ++fired;
        eq.schedule(200, [&] { ++fired; });
    });
    Engine engine;
    engine.addExternalPartition("machine", eq);
    engine.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(engine.stats().finalTick, Tick{200});
}

TEST(Pdes, ConnectRejectsZeroLookaheadAndExternals)
{
    Engine engine;
    engine.addPartition("a");
    engine.addPartition("b");
    EventQueue eq;
    engine.addExternalPartition("x", eq);
    EXPECT_THROW(engine.connect(0, 1, 0), tb::PanicError);
    EXPECT_THROW(engine.connect(0, 2, 100), tb::PanicError);
    EXPECT_THROW(engine.connect(0, 0, 100), tb::PanicError);
    EXPECT_THROW(engine.connect(0, 7, 100), tb::PanicError);
}

TEST(Pdes, SendBelowLookaheadPanics)
{
    Engine engine;
    Partition& a = engine.addPartition("a");
    engine.addPartition("b");
    engine.connect(0, 1, 50);
    EXPECT_THROW(a.send(1, 49, [] {}), tb::PanicError);
    EXPECT_THROW(a.send(2, 100, [] {}), tb::PanicError);
}

TEST(Pdes, CrossPartitionSendDelivers)
{
    Engine engine;
    Partition& a = engine.addPartition("a");
    Partition& b = engine.addPartition("b");
    engine.connect(0, 1, 10);
    engine.connect(1, 0, 10);
    std::vector<std::string> log;
    a.schedule(5, [&] {
        log.push_back("a@5");
        a.send(1, 20, [&] {
            log.push_back("b@20");
            b.send(0, 35, [&] { log.push_back("a@35"); });
        });
    });
    engine.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a@5", "b@20", "a@35"}));
    EXPECT_EQ(engine.stats().sent, 2u);
    EXPECT_EQ(engine.stats().merged, 2u);
}

/**
 * Null-message progress at (almost) zero load: a ring of partitions
 * where only one far-future event exists anywhere. The only way time
 * reaches it is clock propagation (null messages plus the GVT
 * rescue); a conservative implementation that deadlocks or creeps
 * unboundedly fails this under the test timeout.
 */
TEST(Pdes, NullMessageProgressAtZeroLoad)
{
    for (unsigned threads : {1u, 3u}) {
        Engine engine(threaded(threads));
        constexpr unsigned kRing = 4;
        for (unsigned i = 0; i < kRing; ++i)
            engine.addPartition("ring" + std::to_string(i));
        for (unsigned i = 0; i < kRing; ++i)
            engine.connect(static_cast<PartitionId>(i),
                           static_cast<PartitionId>((i + 1) % kRing),
                           1000);
        bool fired = false;
        // 10^9 ticks away: ~10^6 creep rounds if clocks only advanced
        // by ring lookahead, microseconds with the GVT rescue.
        engine.partition(0).schedule(1'000'000'000,
                                     [&] { fired = true; });
        engine.run();
        EXPECT_TRUE(fired) << threads << " threads";
        EXPECT_EQ(engine.stats().finalTick, Tick{1'000'000'000});
    }
}

TEST(Pdes, ZeroEventsTerminates)
{
    Engine engine(threaded(2));
    engine.addPartition("a");
    engine.addPartition("b");
    engine.connect(0, 1, 10);
    engine.run();
    EXPECT_EQ(engine.stats().fired, 0u);
}

TEST(Pdes, CrossPartitionCancelInTime)
{
    Engine engine;
    Partition& a = engine.addPartition("a");
    engine.addPartition("b");
    engine.connect(0, 1, 10);
    bool fired = false;
    a.schedule(0, [&] {
        RemoteHandle h =
            a.sendCancelable(1, 500, [&] { fired = true; });
        // Cancel takes effect at 100 < 500: must win.
        a.scheduleIn(50, [&, h] { a.cancel(h, 100); });
    });
    engine.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(engine.stats().cancelsSent, 1u);
}

TEST(Pdes, CrossPartitionCancelTooLateIsNoOp)
{
    Engine engine;
    Partition& a = engine.addPartition("a");
    engine.addPartition("b");
    engine.connect(0, 1, 10);
    bool fired = false;
    a.schedule(0, [&] {
        RemoteHandle h =
            a.sendCancelable(1, 500, [&] { fired = true; });
        // Takes effect at 600 > 500: the target always fires first.
        a.scheduleIn(50, [&, h] { a.cancel(h, 600); });
    });
    engine.run();
    EXPECT_TRUE(fired);
}

TEST(Pdes, CancelAtTargetTickIsDeterministicNoOp)
{
    // At an equal tick the target's (partition, seq) key is smaller
    // (it was sent first on the same channel), so it fires first.
    Engine engine;
    Partition& a = engine.addPartition("a");
    engine.addPartition("b");
    engine.connect(0, 1, 10);
    bool fired = false;
    a.schedule(0, [&] {
        RemoteHandle h =
            a.sendCancelable(1, 500, [&] { fired = true; });
        a.cancel(h, 500);
    });
    engine.run();
    EXPECT_TRUE(fired);
}

/**
 * The documented total order: (time, priority, origin partition,
 * origin seq). Two senders racing payloads into one destination at
 * the same (tick, priority) must land in partition-id order no matter
 * which mailbox drains first; local events of the destination at the
 * same key sort by its own partition id against them.
 */
TEST(Pdes, TieBreakTotalOrder)
{
    for (unsigned threads : {1u, 3u}) {
        Engine engine(threaded(threads));
        Partition& a = engine.addPartition("a");   // id 0
        Partition& b = engine.addPartition("b");   // id 1
        Partition& c = engine.addPartition("mid"); // id 2
        engine.connect(0, 2, 10);
        engine.connect(1, 2, 10);
        std::vector<std::string> order;
        // Sender b schedules its send EARLIER in real time than a's,
        // but a's partition id is smaller: a's payload must still run
        // first at the shared tick.
        b.schedule(0, [&] {
            b.send(2, 100, [&] { order.push_back("from-b"); });
        });
        a.schedule(5, [&] {
            a.send(2, 100, [&] { order.push_back("from-a"); });
        });
        c.schedule(100, [&] { order.push_back("local-c"); });
        // Priority dominates the partition tie-break.
        b.schedule(0, [&] {
            b.send(2, 100, [&] { order.push_back("prio"); }, -1);
        });
        engine.run();
        EXPECT_EQ(order,
                  (std::vector<std::string>{"prio", "from-a", "from-b",
                                            "local-c"}))
            << threads << " threads";
    }
}

/**
 * Randomized serial-vs-threaded equivalence stress: a seeded random
 * topology and workload (self-rescheduling events, cross-partition
 * sends at lookahead distance, cancelable sends with in-time and late
 * cancels) executed at 1/2/4 worker threads must produce identical
 * per-partition execution logs. This is the engine-level version of
 * the CI pdes-determinism artifact diff.
 */
TEST(Pdes, RandomizedSerialVsThreadedEquivalence)
{
    constexpr unsigned kParts = 8;
    constexpr Tick kLookahead = 64;
    constexpr Tick kHorizon = 20'000;

    auto runOnce = [&](std::uint64_t seed, unsigned threads) {
        Engine engine(threaded(threads));
        std::vector<Partition*> parts;
        for (unsigned i = 0; i < kParts; ++i)
            parts.push_back(
                &engine.addPartition("p" + std::to_string(i)));
        // Ring both ways plus a chord: strongly connected so traffic
        // reaches everyone, cycles exercise the creep/rescue path.
        for (unsigned i = 0; i < kParts; ++i) {
            const auto s = static_cast<PartitionId>(i);
            engine.connect(s, static_cast<PartitionId>((i + 1) % kParts),
                           kLookahead);
            engine.connect(
                s, static_cast<PartitionId>((i + kParts - 1) % kParts),
                kLookahead);
            engine.connect(s, static_cast<PartitionId>((i + 3) % kParts),
                           kLookahead);
        }
        // One log per partition, appended only by its owner thread,
        // concatenated in partition order after the run.
        std::vector<std::vector<std::uint64_t>> logs(kParts);

        struct Hop
        {
            Engine* engine;
            std::vector<Partition*>* parts;
            std::vector<std::vector<std::uint64_t>>* logs;
            std::uint64_t rng;

            std::uint64_t
            mix()
            {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                return rng;
            }

            void
            runAt(unsigned idx)
            {
                Partition& self = *(*parts)[idx];
                (*logs)[idx].push_back(
                    (self.now() << 8) ^ (rng & 0xff));
                if (self.now() >= kHorizon)
                    return;
                const std::uint64_t r = mix();
                Hop next = *this;
                switch (r % 4) {
                case 0: { // local reschedule
                    self.scheduleIn(1 + r % 300,
                                    [next, idx]() mutable {
                                        next.runAt(idx);
                                    });
                    break;
                }
                case 1: { // plain cross-partition send
                    const unsigned dst =
                        (idx + 1 + r % 2 * 2) % kParts; // +1 or +3
                    self.send(static_cast<PartitionId>(dst),
                              self.now() + kLookahead + r % 200,
                              [next, dst]() mutable {
                                  next.runAt(dst);
                              });
                    break;
                }
                case 2: { // cancelable send, canceled in time 50/50
                    const unsigned dst = (idx + kParts - 1) % kParts;
                    const Tick target =
                        self.now() + 2 * kLookahead + r % 200;
                    RemoteHandle h = self.sendCancelable(
                        static_cast<PartitionId>(dst), target,
                        [next, dst]() mutable { next.runAt(dst); });
                    // The cancel is sent one tick from now, so its
                    // earliest legal timestamp is now+1+lookahead.
                    const bool inTime = (r >> 32) & 1;
                    const Tick at = inTime
                                        ? self.now() + kLookahead + 1
                                        : target + 1 + r % 50;
                    Partition* sp = &self;
                    self.scheduleIn(1, [sp, h, at] {
                        sp->cancel(h, at);
                    });
                    break;
                }
                default: { // burst: two locals at one tick (tie-break)
                    const Tick at = self.now() + 1 + r % 100;
                    self.schedule(at, [next, idx]() mutable {
                        next.runAt(idx);
                    });
                    Hop other = next;
                    other.rng = mix();
                    self.schedule(at, [other, idx]() mutable {
                        Hop h2 = other;
                        (*h2.logs)[idx].push_back(h2.rng);
                    });
                    break;
                }
                }
            }
        };

        tb::Random seeder(seed);
        for (unsigned i = 0; i < kParts; ++i) {
            Hop hop{&engine, &parts, &logs, seeder.next() | 1};
            parts[i]->schedule(i * 7, [hop, i]() mutable {
                hop.runAt(i);
            });
        }
        engine.run();

        std::vector<std::uint64_t> flat;
        for (unsigned i = 0; i < kParts; ++i) {
            flat.push_back(0xffff'0000'0000'0000ull | i);
            flat.insert(flat.end(), logs[i].begin(), logs[i].end());
        }
        return flat;
    };

    for (std::uint64_t seed : {1ull, 42ull, 20260808ull}) {
        const auto serial = runOnce(seed, 1);
        ASSERT_GT(serial.size(), kParts); // workload actually ran
        EXPECT_EQ(runOnce(seed, 2), serial) << "seed " << seed;
        EXPECT_EQ(runOnce(seed, 4), serial) << "seed " << seed;
    }
}

TEST(Pdes, RunIsOneShot)
{
    Engine engine;
    engine.addPartition("a");
    engine.run();
    EXPECT_THROW(engine.run(), tb::PanicError);
}

TEST(Pdes, StatsAggregateAcrossPartitions)
{
    Engine engine(threaded(2));
    Partition& a = engine.addPartition("a");
    Partition& b = engine.addPartition("b");
    engine.connect(0, 1, 10);
    a.schedule(0, [&] { a.send(1, 10, [] {}); });
    b.schedule(5, [] {});
    engine.run();
    const auto s = engine.stats();
    EXPECT_EQ(s.partitions, 2u);
    EXPECT_EQ(s.threads, 2u);
    EXPECT_EQ(s.scheduled, 2u);
    EXPECT_EQ(s.sent, 1u);
    EXPECT_EQ(s.merged, 1u);
    EXPECT_EQ(s.fired, 3u);
    EXPECT_EQ(engine.partition(0).stats().fired, 1u);
    EXPECT_EQ(engine.partition(1).stats().fired, 2u);
}

} // namespace
