/**
 * @file
 * CampaignSupervisor tests: deterministic retry/backoff sequencing,
 * continue-on-error outcome classification, timeout classification of
 * a deliberately hung point, forked-crash containment under isolate
 * mode, and the failure manifest / counter surfaces.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstddef>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "harness/campaign_supervisor.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using harness::CampaignSupervisor;
using harness::PointOutcome;
using harness::PointTask;
using harness::SupervisorPolicy;
using harness::SupervisorReport;

TEST(SupervisorBackoff, DeterministicExponentialWithJitter)
{
    SupervisorPolicy p;
    p.backoffBaseMs = 100;
    p.backoffCapMs = 10000;
    p.seed = 42;

    // Same (seed, index, attempt) -> same delay, every time.
    for (unsigned attempt = 2; attempt <= 6; ++attempt) {
        EXPECT_EQ(CampaignSupervisor::backoffDelayMs(p, 7, attempt),
                  CampaignSupervisor::backoffDelayMs(p, 7, attempt));
    }

    // Exponential base with jitter in [0, delay/2]: attempt k's delay
    // lies in [base << (k-2), 1.5 * (base << (k-2))].
    for (unsigned attempt = 2; attempt <= 5; ++attempt) {
        const std::uint64_t base = 100ull << (attempt - 2);
        const std::uint64_t d =
            CampaignSupervisor::backoffDelayMs(p, 3, attempt);
        EXPECT_GE(d, base) << "attempt " << attempt;
        EXPECT_LE(d, base + base / 2) << "attempt " << attempt;
    }

    // The cap bounds arbitrarily late attempts.
    EXPECT_LE(CampaignSupervisor::backoffDelayMs(p, 3, 30),
              p.backoffCapMs);

    // Different seeds decorrelate the jitter (some attempt differs).
    SupervisorPolicy q = p;
    q.seed = 43;
    bool differs = false;
    for (unsigned attempt = 2; attempt <= 8 && !differs; ++attempt) {
        differs |= CampaignSupervisor::backoffDelayMs(p, 3, attempt) !=
                   CampaignSupervisor::backoffDelayMs(q, 3, attempt);
    }
    EXPECT_TRUE(differs);

    // First attempt and disabled backoff never wait.
    EXPECT_EQ(CampaignSupervisor::backoffDelayMs(p, 3, 1), 0u);
    SupervisorPolicy off = p;
    off.backoffBaseMs = 0;
    EXPECT_EQ(CampaignSupervisor::backoffDelayMs(off, 3, 4), 0u);
}

TEST(Supervisor, RetriesUntilSuccessAndCountsAttempts)
{
    SupervisorPolicy p;
    p.jobs = 2;
    p.maxAttempts = 4;
    p.backoffBaseMs = 1; // keep the test fast but exercise the sleep
    CampaignSupervisor sup(p);

    // Point 2 fails twice then succeeds; point 5 always fails.
    std::array<std::atomic<int>, 8> calls{};
    PointTask task;
    task.run = [&](std::size_t i) {
        const int n = ++calls[i];
        if (i == 2 && n <= 2)
            throw std::runtime_error("flaky");
        if (i == 5)
            throw std::runtime_error("always broken");
        return "ok:" + std::to_string(i);
    };
    task.repro = [](std::size_t i) {
        return "bench --only-point " + std::to_string(i);
    };

    const SupervisorReport r = sup.run(8, task);
    EXPECT_EQ(r.points[2].outcome, PointOutcome::Ok);
    EXPECT_EQ(r.points[2].attempts, 3u);
    EXPECT_EQ(r.points[5].outcome, PointOutcome::Exception);
    EXPECT_EQ(r.points[5].attempts, 4u);
    EXPECT_EQ(r.points[5].message, "always broken");
    EXPECT_EQ(r.points[5].repro, "bench --only-point 5");
    EXPECT_EQ(r.retries, 2u + 3u); // two for point 2, three for point 5
    EXPECT_EQ(r.failures(), 1u);
    EXPECT_FALSE(r.ok());
    for (std::size_t i = 0; i < 8; ++i) {
        if (i != 5) {
            EXPECT_EQ(sup.results()[i], "ok:" + std::to_string(i));
        }
    }
}

TEST(Supervisor, ClassifiesPanicAsCheckerViolation)
{
    CampaignSupervisor sup(SupervisorPolicy{});
    PointTask task;
    task.run = [](std::size_t i) -> std::string {
        if (i == 1)
            panic("SWMR violated on line 0x40");
        if (i == 2)
            fatal("bad configuration");
        return "fine";
    };
    const SupervisorReport r = sup.run(3, task);
    EXPECT_EQ(r.points[0].outcome, PointOutcome::Ok);
    EXPECT_EQ(r.points[1].outcome, PointOutcome::CheckerViolation);
    EXPECT_NE(r.points[1].message.find("SWMR"), std::string::npos);
    EXPECT_EQ(r.points[2].outcome, PointOutcome::Exception);
    EXPECT_EQ(r.count(PointOutcome::CheckerViolation), 1u);
    EXPECT_EQ(r.count(PointOutcome::Exception), 1u);
}

TEST(Supervisor, TimeoutClassifiesHungPoint)
{
    SupervisorPolicy p;
    p.jobs = 2;
    p.deadlineMs = 50;
    CampaignSupervisor sup(p);

    // The hung point blocks on a latch the test releases *after* the
    // supervisor has given up on it, proving the campaign finished
    // around a point that was still running.
    struct Latch
    {
        std::mutex mu;
        std::condition_variable cv;
        bool release = false;
    };
    auto latch = std::make_shared<Latch>();

    PointTask task;
    task.run = [latch](std::size_t i) -> std::string {
        if (i == 1) {
            std::unique_lock<std::mutex> lock(latch->mu);
            latch->cv.wait(lock, [&]() { return latch->release; });
        }
        return "done:" + std::to_string(i);
    };
    const SupervisorReport r = sup.run(4, task);
    EXPECT_EQ(r.points[1].outcome, PointOutcome::Timeout);
    EXPECT_NE(r.points[1].message.find("deadline"),
              std::string::npos);
    EXPECT_EQ(r.count(PointOutcome::Ok), 3u);
    EXPECT_EQ(r.failures(), 1u);

    {
        std::lock_guard<std::mutex> lock(latch->mu);
        latch->release = true;
    }
    latch->cv.notify_all();
    sup.joinAbandonedForTest();
}

TEST(Supervisor, IsolateContainsCrashingPoint)
{
    SupervisorPolicy p;
    p.jobs = 1; // fork from a single-threaded supervisor
    p.isolate = true;
    CampaignSupervisor sup(p);

    PointTask task;
    task.run = [](std::size_t i) -> std::string {
        if (i == 1) {
            // SIGKILL dies identically under every sanitizer — the
            // classifier sees a signaled child either way.
            std::raise(SIGKILL);
        }
        if (i == 2)
            throw std::runtime_error("forked exception");
        return "isolated:" + std::to_string(i);
    };
    const SupervisorReport r = sup.run(4, task);
    EXPECT_EQ(r.points[0].outcome, PointOutcome::Ok);
    EXPECT_EQ(sup.results()[0], "isolated:0");
    EXPECT_EQ(r.points[1].outcome, PointOutcome::Crash);
    EXPECT_NE(r.points[1].message.find("signal"), std::string::npos);
    EXPECT_EQ(r.points[2].outcome, PointOutcome::Exception);
    EXPECT_EQ(r.points[2].message, "forked exception");
    EXPECT_EQ(r.points[3].outcome, PointOutcome::Ok);
    EXPECT_EQ(sup.results()[3], "isolated:3");
    EXPECT_EQ(r.failures(), 2u);
}

TEST(Supervisor, IsolateEnforcesDeadlineWithSigkill)
{
    SupervisorPolicy p;
    p.jobs = 1;
    p.isolate = true;
    p.deadlineMs = 50;
    CampaignSupervisor sup(p);

    PointTask task;
    task.run = [](std::size_t i) -> std::string {
        if (i == 0) {
            for (;;)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        return "quick";
    };
    const SupervisorReport r = sup.run(2, task);
    EXPECT_EQ(r.points[0].outcome, PointOutcome::Timeout);
    EXPECT_NE(r.points[0].message.find("child killed"),
              std::string::npos);
    EXPECT_EQ(r.points[1].outcome, PointOutcome::Ok);
}

TEST(Supervisor, IsolateCarriesLargeArtifactsAcrossThePipe)
{
    SupervisorPolicy p;
    p.isolate = true;
    CampaignSupervisor sup(p);

    // Larger than a pipe buffer (64 KiB on Linux): the parent must
    // drain concurrently or the child deadlocks on write.
    const std::string big(256 * 1024, 'x');
    PointTask task;
    task.run = [&](std::size_t) { return big; };
    const SupervisorReport r = sup.run(1, task);
    ASSERT_EQ(r.points[0].outcome, PointOutcome::Ok);
    EXPECT_EQ(sup.results()[0], big);
}

TEST(Supervisor, ManifestListsEveryFailureWithRepro)
{
    CampaignSupervisor sup(SupervisorPolicy{});
    PointTask task;
    task.run = [](std::size_t i) -> std::string {
        if (i % 2 == 1)
            throw std::runtime_error("odd point " +
                                     std::to_string(i));
        return "even";
    };
    task.repro = [](std::size_t i) {
        return "bench --only-point " + std::to_string(i);
    };
    const SupervisorReport r = sup.run(6, task);

    std::ostringstream manifest;
    r.writeManifest(manifest, "test");
    const std::string m = manifest.str();
    for (std::size_t i : {1u, 3u, 5u}) {
        EXPECT_NE(m.find("\"point\": " + std::to_string(i)),
                  std::string::npos)
            << m;
        EXPECT_NE(m.find("bench --only-point " + std::to_string(i)),
                  std::string::npos)
            << m;
    }
    EXPECT_EQ(m.find("\"point\": 0"), std::string::npos) << m;
    EXPECT_NE(m.find("\"outcome\": \"exception\""),
              std::string::npos);

    const std::string summary = r.summaryJson("test");
    EXPECT_NE(summary.find("\"kind\": \"supervisor\""),
              std::string::npos);
    EXPECT_NE(summary.find("\"exceptions\": 3"), std::string::npos);
    EXPECT_NE(summary.find("\"ok\": 3"), std::string::npos);
    EXPECT_NE(summary.find("\"interrupted\": false"),
              std::string::npos);
}

TEST(Supervisor, InterruptStopsClaimingAndMarksNotRun)
{
    CampaignSupervisor::installSigintHandler();
    CampaignSupervisor::clearInterruptForTest();

    SupervisorPolicy p;
    p.jobs = 1; // deterministic claim order for the assertion below
    CampaignSupervisor sup(p);
    PointTask task;
    task.run = [](std::size_t i) {
        if (i == 2)
            std::raise(SIGINT); // the handler only sets the flag
        return "ran:" + std::to_string(i);
    };
    task.repro = [](std::size_t i) {
        return "bench --only-point " + std::to_string(i);
    };
    const SupervisorReport r = sup.run(6, task);
    CampaignSupervisor::clearInterruptForTest();

    EXPECT_TRUE(r.interrupted);
    // The in-flight point finishes gracefully; nothing after it runs.
    EXPECT_EQ(r.points[2].outcome, PointOutcome::Ok);
    for (std::size_t i = 3; i < 6; ++i) {
        EXPECT_EQ(r.points[i].outcome, PointOutcome::NotRun) << i;
        EXPECT_EQ(r.points[i].repro,
                  "bench --only-point " + std::to_string(i));
    }
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.failures(), 0u); // interrupted != failed

    std::ostringstream manifest;
    r.writeManifest(manifest, "test");
    EXPECT_NE(manifest.str().find("\"outcome\": \"interrupted\""),
              std::string::npos);
    EXPECT_NE(manifest.str().find("\"outcome\": \"not-run\""),
              std::string::npos);
}

TEST(Supervisor, ZeroPointsIsANoop)
{
    CampaignSupervisor sup(SupervisorPolicy{});
    PointTask task;
    task.run = [](std::size_t) { return "never"; };
    const SupervisorReport r = sup.run(0, task);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.points.size(), 0u);
}

} // namespace
} // namespace tb
