/**
 * @file
 * Unit tests for the DRAM timing model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/event_queue.hh"

namespace tb {
namespace {

TEST(Dram, SingleReadLatency)
{
    EventQueue eq;
    mem::Dram d(eq, mem::DramConfig{}, "dram");
    Tick done = 0;
    d.read([&]() { done = eq.now(); });
    eq.run();
    // 60ns access + 16ns bus transfer.
    EXPECT_EQ(done, 76 * kNanosecond);
}

TEST(Dram, ArrayAccessesOverlapBusSerializes)
{
    EventQueue eq;
    mem::Dram d(eq, mem::DramConfig{}, "dram");
    Tick first = 0, second = 0;
    d.read([&]() { first = eq.now(); });
    d.read([&]() { second = eq.now(); });
    eq.run();
    // Interleaved banks: both rows open concurrently; only the 16ns
    // transfers serialize.
    EXPECT_EQ(first, 76 * kNanosecond);
    EXPECT_EQ(second, 92 * kNanosecond);
}

TEST(Dram, WriteOccupiesBus)
{
    EventQueue eq;
    mem::Dram d(eq, mem::DramConfig{}, "dram");
    d.write(); // bus busy [0, 16ns)
    Tick done = 0;
    d.read([&]() { done = eq.now(); });
    eq.run();
    // Read data ready at 60ns > 16ns: no extra stall.
    EXPECT_EQ(done, 76 * kNanosecond);
}

TEST(Dram, BackToBackWritesStallReads)
{
    EventQueue eq;
    mem::Dram d(eq, mem::DramConfig{}, "dram");
    for (int i = 0; i < 6; ++i)
        d.write(); // bus busy until 96ns
    Tick done = 0;
    d.read([&]() { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, (96 + 16) * kNanosecond);
    EXPECT_GT(d.statistics().scalarValue("busStallTicks"), 0.0);
}

TEST(Dram, StatsCountAccesses)
{
    EventQueue eq;
    mem::Dram d(eq, mem::DramConfig{}, "dram");
    d.read([]() {});
    d.read([]() {});
    d.write();
    eq.run();
    EXPECT_DOUBLE_EQ(d.statistics().scalarValue("reads"), 2.0);
    EXPECT_DOUBLE_EQ(d.statistics().scalarValue("writes"), 1.0);
}

TEST(Dram, CustomTiming)
{
    EventQueue eq;
    mem::DramConfig cfg;
    cfg.accessLatency = 100 * kNanosecond;
    cfg.busTransfer = 10 * kNanosecond;
    mem::Dram d(eq, cfg, "dram");
    Tick done = 0;
    d.read([&]() { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 110 * kNanosecond);
}

} // namespace
} // namespace tb
