/**
 * @file
 * End-to-end timing validation: hand-computed latencies for the Table
 * 1 machine must match the simulator exactly. These tests pin the
 * latency model so refactors cannot silently change the timing that
 * the figures are built on.
 *
 * Reference numbers (2-node machine, local home, 8 B requests = 1
 * flit, 72 B data = 5 flits):
 *
 *   L1 hit               = 2 ns
 *   L1 miss, L2 hit      = 12 ns
 *   L2 miss, local home  = 12 (detect)
 *                        + 32 (req marshal/unmarshal, 0 hops)
 *                        + 76 (DRAM 60 + bus 16)
 *                        + 48 (data 32 + 16 body)            = 168 ns
 *   L2 miss, remote home = + 16 (req hop) + 16 (data hop)    = 200 ns
 */

#include <gtest/gtest.h>

#include <optional>

#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"

namespace tb {
namespace {

struct Rig
{
    EventQueue eq;
    noc::Network net;
    mem::MemorySystem mem;

    Rig()
        : net(eq, cfg()), mem(eq, net, mem::MemoryConfig{})
    {}

    static noc::NetworkConfig
    cfg()
    {
        noc::NetworkConfig c;
        c.dimension = 1;
        return c;
    }

    /** Load and return the completion latency. */
    Tick
    loadLatency(NodeId n, Addr a)
    {
        const Tick start = eq.now();
        std::optional<Tick> done;
        mem.controller(n).load(a,
                               [&](std::uint64_t) { done = eq.now(); });
        eq.run();
        EXPECT_TRUE(done.has_value());
        return done.value_or(0) - start;
    }

    /** Allocate one shared page homed at node 0 / node 1. */
    Addr
    pageHomedAt(NodeId home)
    {
        for (;;) {
            const Addr a = mem.addressMap().allocShared(4096);
            if (mem.addressMap().home(a) == home)
                return a;
        }
    }
};

TEST(Timing, ColdMissLocalHomeIs168ns)
{
    Rig r;
    const Addr a = r.pageHomedAt(0);
    EXPECT_EQ(r.loadLatency(0, a), 168 * kNanosecond);
}

TEST(Timing, ColdMissRemoteHomeIs200ns)
{
    Rig r;
    const Addr a = r.pageHomedAt(1);
    EXPECT_EQ(r.loadLatency(0, a), 200 * kNanosecond);
}

TEST(Timing, L1HitIs2ns)
{
    Rig r;
    const Addr a = r.pageHomedAt(0);
    r.loadLatency(0, a); // install
    EXPECT_EQ(r.loadLatency(0, a), 2 * kNanosecond);
}

TEST(Timing, L2HitIs12ns)
{
    Rig r;
    const Addr a = r.pageHomedAt(0);
    r.loadLatency(0, a); // install in L1+L2
    // Evict the L1 copy by filling its 2-way set (L1: 128 sets,
    // stride 128*64 = 8192) with two other lines.
    const Addr b = r.mem.addressMap().allocPrivate(0, 64 * 1024);
    r.loadLatency(0, b + (a % 8192));
    r.loadLatency(0, b + (a % 8192) + 8192);
    // a's line is now L1-evicted but still in the 8-way L2.
    EXPECT_EQ(r.loadLatency(0, a), 12 * kNanosecond);
}

TEST(Timing, RemoteDirtyMissPaysInterventionLegs)
{
    Rig r;
    const Addr a = r.pageHomedAt(0);
    bool stored = false;
    r.mem.controller(1).store(a, 7, [&]() { stored = true; });
    r.eq.run();
    ASSERT_TRUE(stored);
    // Node 0 reads a line dirty at node 1: request to home (local),
    // FwdGetS to node 1, OwnerData back, data to requester. Must cost
    // strictly more than a clean local-home miss.
    const Tick lat = r.loadLatency(0, a);
    EXPECT_GT(lat, 168 * kNanosecond);
    // And strictly less than two full cold misses (sanity ceiling).
    EXPECT_LT(lat, 2 * 200 * kNanosecond);
}

TEST(Timing, UpgradeCostsLessThanColdWriteMiss)
{
    Rig r;
    // Cold write miss at node 0 (remote home).
    const Addr a = r.pageHomedAt(1);
    Tick cold_start = r.eq.now();
    std::optional<Tick> cold_done;
    r.mem.controller(0).store(a, 1,
                              [&]() { cold_done = r.eq.now(); });
    r.eq.run();
    ASSERT_TRUE(cold_done.has_value());
    const Tick cold = *cold_done - cold_start;

    // Upgrade: node 2... 2-node machine, so use a fresh line shared
    // by node 0 first, then written (Upgrade carries no data).
    const Addr b = r.pageHomedAt(1) + 64;
    r.loadLatency(0, b); // S copy at node 0 (via E grant)
    r.loadLatency(1, b); // downgrade to S at both
    Tick up_start = r.eq.now();
    std::optional<Tick> up_done;
    r.mem.controller(0).store(b, 2, [&]() { up_done = r.eq.now(); });
    r.eq.run();
    ASSERT_TRUE(up_done.has_value());
    const Tick upgrade = *up_done - up_start;

    // The upgrade pays an invalidation round but no DRAM data fetch
    // and no 72B data message.
    EXPECT_LT(upgrade, cold);
}

TEST(Timing, RmwCostsOneHomeRoundTripPlusDram)
{
    Rig r;
    const Addr a = r.pageHomedAt(0);
    const Tick start = r.eq.now();
    std::optional<Tick> done;
    r.mem.controller(0).atomicRmw(
        a, [&r, a](tb::Tick) { return r.mem.backend().fetchAdd(a, 1); },
        [&](std::uint64_t) { done = r.eq.now(); });
    r.eq.run();
    ASSERT_TRUE(done.has_value());
    // 2 (issue) + 32 (req, local) + 76 (DRAM) + 32 (result) = 142 ns.
    EXPECT_EQ(*done - start, 142 * kNanosecond);
}

TEST(Timing, BarrierReleaseScalesWithSharerCount)
{
    // The flag flip collects one InvAck per spinning sharer; with
    // more sharers the release takes longer. This is the fan-out the
    // external wake-up inherits.
    auto release_cost = [](unsigned dim) {
        EventQueue eq;
        noc::NetworkConfig c;
        c.dimension = dim;
        noc::Network net(eq, c);
        mem::MemorySystem mem(eq, net, mem::MemoryConfig{});
        const Addr a = mem.addressMap().allocShared(4096);
        const unsigned n = net.config().nodes();
        for (NodeId i = 1; i < n; ++i) {
            bool ok = false;
            mem.controller(i).load(a, [&](std::uint64_t) { ok = true; });
            eq.run();
            EXPECT_TRUE(ok);
        }
        const Tick start = eq.now();
        std::optional<Tick> done;
        mem.controller(0).store(a, 1, [&]() { done = eq.now(); });
        eq.run();
        return done.value_or(start) - start;
    };
    const Tick small = release_cost(1); // 1 sharer
    const Tick large = release_cost(4); // 15 sharers
    EXPECT_GT(large, small);
}

} // namespace
} // namespace tb
