/**
 * @file
 * Unit + property tests for the thrifty lock extension (the paper's
 * future-work direction: sleep-on-wait for locks).
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "harness/machine.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "thrifty/thrifty_lock.hh"

namespace tb {
namespace {

using harness::Machine;
using harness::SystemConfig;
using thrifty::ThriftyLock;

struct Rig
{
    Machine m{SystemConfig::small(2)}; // 4 threads
    std::unique_ptr<ThriftyLock> lock;

    explicit Rig(power::SleepStateTable states =
                     power::SleepStateTable::paperDefault())
    {
        lock = std::make_unique<ThriftyLock>(m.eventQueue(), 4,
                                             m.memory(),
                                             std::move(states), "lk");
    }

    /** Each thread acquires, holds for @p hold, releases, @p rounds
     *  times; returns the max concurrent holders ever observed. */
    unsigned
    contend(unsigned rounds, Tick hold)
    {
        unsigned inside = 0, max_inside = 0, completed = 0;
        std::function<void(ThreadId, unsigned)> loop =
            [&](ThreadId tid, unsigned r) {
                if (r >= rounds) {
                    ++completed;
                    return;
                }
                lock->acquire(m.thread(tid), [&, tid, r]() {
                    ++inside;
                    max_inside = std::max(max_inside, inside);
                    m.thread(tid).compute(hold, [&, tid, r]() {
                        --inside;
                        lock->release(m.thread(tid), [&, tid, r]() {
                            loop(tid, r + 1);
                        });
                    });
                });
            };
        for (ThreadId t = 0; t < 4; ++t)
            loop(t, 0);
        m.run();
        EXPECT_EQ(completed, 4u);
        return max_inside;
    }
};

TEST(ThriftyLock, UncontendedAcquireIsImmediate)
{
    Rig r;
    bool in = false;
    r.lock->acquire(r.m.thread(0), [&]() { in = true; });
    r.m.eventQueue().run();
    EXPECT_TRUE(in);
    EXPECT_TRUE(r.lock->held());
    EXPECT_EQ(r.lock->statistics().immediateAcquires, 1u);
    r.lock->release(r.m.thread(0), []() {});
    r.m.eventQueue().run();
    EXPECT_FALSE(r.lock->held());
}

TEST(ThriftyLock, MutualExclusionUnderContention)
{
    Rig r;
    const unsigned max_inside = r.contend(6, 200 * kMicrosecond);
    EXPECT_EQ(max_inside, 1u);
    EXPECT_EQ(r.lock->statistics().acquisitions, 24u);
    EXPECT_FALSE(r.lock->held());
}

TEST(ThriftyLock, LongCriticalSectionsInduceSleep)
{
    Rig r;
    // Long holds: after the first observed wait trains the predictor,
    // waiters sleep instead of spinning.
    r.contend(5, 800 * kMicrosecond);
    EXPECT_GT(r.lock->statistics().sleeps, 0u);
}

TEST(ThriftyLock, ShortWaitsStayOnTheSpinPath)
{
    // Staggered arrivals and tiny critical sections: every wait is
    // far below any state's round trip, so the conditional sleep
    // (prediction and competitive fallback alike) must refuse.
    Rig r;
    unsigned completed = 0;
    std::function<void(ThreadId, unsigned)> loop = [&](ThreadId tid,
                                                       unsigned round) {
        if (round >= 5) {
            ++completed;
            return;
        }
        r.m.thread(tid).compute(
            50 * kMicrosecond + tid * 3 * kMicrosecond,
            [&, tid, round]() {
                r.lock->acquire(r.m.thread(tid), [&, tid, round]() {
                    r.m.thread(tid).compute(
                        2 * kMicrosecond, [&, tid, round]() {
                            r.lock->release(r.m.thread(tid),
                                            [&, tid, round]() {
                                                loop(tid, round + 1);
                                            });
                        });
                });
            });
    };
    for (ThreadId t = 0; t < 4; ++t)
        loop(t, 0);
    r.m.run();
    EXPECT_EQ(completed, 4u);
    EXPECT_EQ(r.lock->statistics().sleeps, 0u);
}

TEST(ThriftyLock, EmptyStateTableIsPlainSpinLock)
{
    Rig r{power::SleepStateTable()};
    const unsigned max_inside = r.contend(4, 500 * kMicrosecond);
    EXPECT_EQ(max_inside, 1u);
    EXPECT_EQ(r.lock->statistics().sleeps, 0u);
    EXPECT_GT(r.lock->statistics().spinWaits, 0u);
}

TEST(ThriftyLock, SleepingSavesEnergyOnLongHolds)
{
    // Same contention pattern with and without sleep states.
    double spin_energy = 0.0, thrifty_energy = 0.0;
    {
        Rig r{power::SleepStateTable()};
        r.contend(6, 2 * kMillisecond);
        spin_energy = r.m.totalEnergy().totalEnergy();
    }
    {
        Rig r;
        r.contend(6, 2 * kMillisecond);
        thrifty_energy = r.m.totalEnergy().totalEnergy();
    }
    EXPECT_LT(thrifty_energy, spin_energy);
}

TEST(ThriftyLock, ReleaseOfFreeLockPanics)
{
    Rig r;
    EXPECT_THROW(r.lock->release(r.m.thread(0), []() {}), PanicError);
}

TEST(ThriftyLock, OutOfRangeThreadPanics)
{
    Machine m(SystemConfig::small(3)); // 8 threads available
    ThriftyLock lk(m.eventQueue(), 2, m.memory(),
                   power::SleepStateTable::paperDefault(), "lk");
    EXPECT_THROW(lk.acquire(m.thread(5), []() {}), PanicError);
}

/** Property: randomized hold/think times never break exclusion. */
class LockProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(LockProperty, RandomizedExclusion)
{
    Rig r;
    Random rng(GetParam());
    unsigned inside = 0;
    bool violated = false;
    unsigned completed = 0;
    std::function<void(ThreadId, unsigned)> loop = [&](ThreadId tid,
                                                       unsigned round) {
        if (round >= 5) {
            ++completed;
            return;
        }
        const Tick think = 1 + rng.uniformInt(600 * kMicrosecond);
        const Tick hold = 1 + rng.uniformInt(900 * kMicrosecond);
        r.m.thread(tid).compute(think, [&, tid, round, hold]() {
            r.lock->acquire(r.m.thread(tid), [&, tid, round, hold]() {
                if (++inside > 1)
                    violated = true;
                r.m.thread(tid).compute(hold, [&, tid, round]() {
                    --inside;
                    r.lock->release(r.m.thread(tid), [&, tid, round]() {
                        loop(tid, round + 1);
                    });
                });
            });
        });
    };
    for (ThreadId t = 0; t < 4; ++t)
        loop(t, 0);
    r.m.run();
    EXPECT_FALSE(violated);
    EXPECT_EQ(completed, 4u);
    EXPECT_FALSE(r.lock->held());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockProperty,
                         ::testing::Values(3u, 7u, 21u, 42u));

} // namespace
} // namespace tb
