/**
 * @file
 * Unit tests for the logging/error facility.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace tb {
namespace {

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant ", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
}

TEST(Logging, PanicMessageCarriesArguments)
{
    try {
        panic("value=", 7, " name=", "foo");
        FAIL() << "panic returned";
    } catch (const PanicError& e) {
        EXPECT_STREQ(e.what(), "panic: value=7 name=foo");
    }
}

TEST(Logging, FatalMessagePrefixed)
{
    try {
        fatal("nope");
        FAIL() << "fatal returned";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "fatal: nope");
    }
}

TEST(Logging, PanicIsLogicErrorFatalIsRuntimeError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, WarnCountsAndRespectsQuiet)
{
    setLogQuiet(true);
    const std::uint64_t before = warnCount();
    warn("something odd: ", 1);
    warn("again");
    EXPECT_EQ(warnCount(), before + 2);
    inform("status only, not counted");
    EXPECT_EQ(warnCount(), before + 2);
    setLogQuiet(false);
}

} // namespace
} // namespace tb
