/**
 * @file
 * TBF1 protocol fuzzing (docs/ROBUSTNESS.md, "Network fault
 * injection"): thousands of deterministically mutated frames —
 * truncated, oversized, desynchronized, bit-flipped, version-bumped —
 * driven through FrameReader and PayloadReader, plus an in-process
 * daemon serving a real campaign while raw fuzz clients hammer its
 * handler table. The invariant everywhere: poison-and-ledger, never
 * crash, never hang, and the healthy campaign still completes
 * byte-identically.
 */

#include "svc/frame.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/campaign_journal.hh"
#include "harness/campaign_supervisor.hh"
#include "harness/posix_io.hh"
#include "sim/random.hh"
#include "svc/campaignd.hh"
#include "svc/net.hh"
#include "svc/worker.hh"

namespace tb {
namespace {

using harness::fnv1a64;
using svc::Frame;
using svc::FrameReader;
using svc::FrameType;
using svc::PayloadReader;

std::string
randomPayload(tb::Random& rng)
{
    std::string p;
    const int fields = static_cast<int>(rng.uniformInt(4));
    for (int f = 0; f < fields; ++f) {
        if (rng.chance(0.5)) {
            svc::appendU64(&p, rng.next());
        } else {
            std::string s;
            const std::size_t len =
                static_cast<std::size_t>(rng.uniformInt(40));
            for (std::size_t i = 0; i < len; ++i)
                s.push_back(
                    static_cast<char>(rng.uniformInt(256)));
            svc::appendString(&p, s);
        }
    }
    return p;
}

std::string
randomValidWire(tb::Random& rng)
{
    static const FrameType kTypes[] = {
        FrameType::Hello,      FrameType::LeaseRequest,
        FrameType::Heartbeat,  FrameType::Result,
        FrameType::PointError, FrameType::Goodbye,
        FrameType::Keys,       FrameType::HelloAck,
        FrameType::LeaseGrant, FrameType::NoWork,
        FrameType::Done,       FrameType::ResultAck,
        FrameType::Reject,
    };
    const FrameType t =
        kTypes[rng.uniformInt(sizeof(kTypes) / sizeof(kTypes[0]))];
    return svc::encodeFrame(t, randomPayload(rng));
}

/** Apply one deterministic mutation to @p wire. */
void
mutate(std::string* wire, tb::Random& rng)
{
    if (wire->empty())
        return;
    switch (rng.uniformInt(7)) {
      case 0: // truncate: the peer died mid-frame
        wire->resize(rng.uniformInt(wire->size()));
        break;
      case 1: { // oversized length field: must never allocate
        if (wire->size() >= svc::kFrameHeaderSize) {
            const std::uint32_t huge =
                svc::kMaxFramePayload + 1 +
                static_cast<std::uint32_t>(rng.uniformInt(1 << 20));
            (*wire)[8] = static_cast<char>(huge & 0xff);
            (*wire)[9] = static_cast<char>((huge >> 8) & 0xff);
            (*wire)[10] = static_cast<char>((huge >> 16) & 0xff);
            (*wire)[11] = static_cast<char>((huge >> 24) & 0xff);
        }
        break;
      }
      case 2: // bad magic
        (*wire)[rng.uniformInt(4)] =
            static_cast<char>(rng.uniformInt(256));
        break;
      case 3: // wrong protocol version
        if (wire->size() >= 6)
            (*wire)[4 + rng.uniformInt(2)] =
                static_cast<char>(1 + rng.uniformInt(255));
        break;
      case 4: { // single bit flip anywhere
        const std::size_t at = rng.uniformInt(wire->size());
        (*wire)[at] = static_cast<char>(
            (*wire)[at] ^ (1u << rng.uniformInt(8)));
        break;
      }
      case 5: { // desync: garbage prepended before the frame
        std::string junk;
        const std::size_t n = 1 + rng.uniformInt(16);
        for (std::size_t i = 0; i < n; ++i)
            junk.push_back(static_cast<char>(rng.uniformInt(256)));
        *wire = junk + *wire;
        break;
      }
      default: { // duplicate a random slice in place
        const std::size_t from = rng.uniformInt(wire->size());
        const std::size_t len =
            1 + rng.uniformInt(wire->size() - from);
        wire->insert(from, wire->substr(from, len));
        break;
      }
    }
}

TEST(FrameFuzz, MutatedFramesNeverCrashOrHangTheReader)
{
    std::size_t driven = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        tb::Random rng(seed);
        for (int iter = 0; iter < 250; ++iter) {
            std::string wire;
            const int frames = 1 + static_cast<int>(rng.uniformInt(3));
            for (int k = 0; k < frames; ++k)
                wire += randomValidWire(rng);
            const int mutations =
                1 + static_cast<int>(rng.uniformInt(2));
            for (int m = 0; m < mutations; ++m)
                mutate(&wire, rng);
            ++driven;

            FrameReader reader;
            std::vector<Frame> decoded;
            bool poisoned = false;
            std::size_t at = 0;
            while (at < wire.size()) {
                const std::size_t chunk = std::min<std::size_t>(
                    1 + rng.uniformInt(64), wire.size() - at);
                std::vector<Frame> out;
                const bool ok =
                    reader.feed(wire.data() + at, chunk, &out);
                for (Frame& f : out)
                    decoded.push_back(std::move(f));
                at += chunk;
                if (!ok) {
                    poisoned = true;
                    EXPECT_FALSE(reader.error().empty())
                        << "poison must carry a diagnostic";
                    break;
                }
            }
            if (poisoned) {
                // Framing is unrecoverable once desynchronized: a
                // poisoned reader must stay poisoned even for bytes
                // that would otherwise be a pristine frame.
                const std::string clean =
                    svc::encodeFrame(FrameType::Done, "");
                std::vector<Frame> out;
                EXPECT_FALSE(
                    reader.feed(clean.data(), clean.size(), &out));
                EXPECT_TRUE(out.empty());
            }
            for (const Frame& f : decoded)
                EXPECT_LE(f.payload.size(), svc::kMaxFramePayload);
        }
    }
    EXPECT_GE(driven, 1000u)
        << "the acceptance bar is >= 1000 mutated frames";
}

TEST(FrameFuzz, PayloadReaderNeverReadsPastTheEnd)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        tb::Random rng(seed);
        for (int iter = 0; iter < 300; ++iter) {
            std::string p;
            const std::size_t len =
                static_cast<std::size_t>(rng.uniformInt(48));
            for (std::size_t i = 0; i < len; ++i)
                p.push_back(static_cast<char>(rng.uniformInt(256)));
            PayloadReader r(p);
            // Read a random mix well past any plausible content; the
            // reader must fail closed (ok() false), never throw or
            // over-read.
            for (int reads = 0; reads < 8; ++reads) {
                if (rng.chance(0.5))
                    (void)r.u64();
                else
                    (void)r.str();
            }
            if (r.ok()) {
                EXPECT_LE(p.size(), std::size_t(64));
            }
        }
    }
}

TEST(FrameFuzz, ParseFrameHeaderRejectsEveryCorruption)
{
    const std::string good = svc::encodeFrame(FrameType::Done, "");
    ASSERT_GE(good.size(), svc::kFrameHeaderSize);
    FrameType t;
    std::uint32_t len = 0;
    std::string err;
    EXPECT_TRUE(
        svc::parseFrameHeader(good.data(), &t, &len, &err));
    EXPECT_EQ(t, FrameType::Done);
    EXPECT_EQ(len, 0u);

    for (std::size_t at = 0; at < 6; ++at) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = good;
            bad[at] = static_cast<char>(bad[at] ^ (1u << bit));
            err.clear();
            EXPECT_FALSE(svc::parseFrameHeader(bad.data(), &t, &len,
                                               &err))
                << "magic/version byte " << at << " bit " << bit;
            EXPECT_FALSE(err.empty());
        }
    }
}

/**
 * The daemon's handler table under fire: six deterministic fuzz
 * clients stream mutated and garbage frames (including valid headers
 * with payloads that never arrive) while a healthy worker completes
 * the campaign. Protocol errors are counted and ledgered; the report
 * stays ok and the artifacts stay byte-identical.
 */
TEST(FrameFuzz, DaemonSurvivesFuzzClientsAndCompletes)
{
    harness::ignoreSigpipe();
    const std::size_t kCount = 6;
    const std::string path =
        testing::TempDir() + "tb_svc_fuzz.sock";
    std::remove(path.c_str());
    const std::string addr = "unix:" + path;

    std::vector<std::uint64_t> keys(kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        keys[i] = fnv1a64("fuzz-test|point:" + std::to_string(i));

    svc::ServiceOptions so;
    so.listen = addr;
    so.campaign = "fuzz-test";
    so.heartbeatMs = 50; // reap half-frame fuzz connections fast
    so.queue.maxAttempts = 3;
    so.queue.backoffBaseMs = 1;
    svc::CampaignService service(so);
    service.setKeys(keys);

    harness::SupervisorReport report;
    std::thread daemon([&]() { report = service.run(kCount); });

    const auto fuzzClient = [&](std::uint64_t seed) {
        tb::Random rng(seed);
        std::string err;
        int fd = -1;
        for (int i = 0; i < 100 && fd < 0; ++i) {
            fd = svc::connectTo(addr, &err);
            if (fd < 0)
                harness::pollOne(-1, 0, 20);
        }
        if (fd < 0)
            return;
        const int bursts = 2 + static_cast<int>(rng.uniformInt(4));
        for (int b = 0; b < bursts; ++b) {
            std::string wire = randomValidWire(rng);
            mutate(&wire, rng);
            if (!wire.empty() &&
                !harness::writeFull(fd, wire.data(), wire.size()))
                break; // daemon already closed us: exactly right
            harness::pollOne(-1, 0, 1);
        }
        ::close(fd);
    };
    std::vector<std::thread> fuzzers;
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        fuzzers.emplace_back(fuzzClient, seed);

    svc::WorkerOptions wo;
    wo.connect = addr;
    wo.count = kCount;
    wo.keys = keys;
    wo.name = "healthy";
    svc::CampaignWorker w(wo);
    std::string err;
    const bool ok = w.run(
        [](std::size_t i) {
            return "fuzz artifact " + std::to_string(i) + "\n";
        },
        &err);
    for (std::thread& t : fuzzers)
        t.join();
    daemon.join();

    EXPECT_TRUE(ok) << err;
    EXPECT_TRUE(report.ok())
        << "fuzz traffic must never fail the campaign";
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(service.results()[i],
                  "fuzz artifact " + std::to_string(i) + "\n");
    EXPECT_GT(service.stats().protocolErrors, 0u)
        << "at least one fuzz stream must have registered";
    EXPECT_FALSE(service.ledger().empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace tb
