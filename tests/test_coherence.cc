/**
 * @file
 * Unit tests for the directory MESI protocol: controller + directory
 * over a real (small) network, exercising stable-state transitions,
 * interventions, evictions, atomics, and the thrifty hardware hooks.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using mem::DirState;
using mem::LineState;
using mem::WakeReason;

struct Rig
{
    EventQueue eq;
    noc::Network net;
    mem::MemorySystem mem;
    Addr shared;

    explicit Rig(unsigned dim = 2)
        : net(eq, makeNet(dim)), mem(eq, net, mem::MemoryConfig{})
    {
        shared = mem.addressMap().allocShared(256 * mem::kPageBytes);
    }

    static noc::NetworkConfig
    makeNet(unsigned dim)
    {
        noc::NetworkConfig c;
        c.dimension = dim;
        return c;
    }

    std::uint64_t
    loadSync(NodeId n, Addr a)
    {
        std::optional<std::uint64_t> got;
        mem.controller(n).load(a, [&](std::uint64_t v) { got = v; });
        eq.run();
        EXPECT_TRUE(got.has_value());
        return got.value_or(~0ull);
    }

    void
    storeSync(NodeId n, Addr a, std::uint64_t v)
    {
        bool done = false;
        mem.controller(n).store(a, v, [&]() { done = true; });
        eq.run();
        EXPECT_TRUE(done);
    }

    mem::Directory&
    homeDir(Addr a)
    {
        return mem.directory(mem.addressMap().home(a));
    }
};

TEST(Coherence, FirstLoadInstallsExclusive)
{
    Rig r;
    EXPECT_EQ(r.loadSync(0, r.shared), 0u);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared),
              LineState::Exclusive);
    EXPECT_EQ(r.mem.controller(0).l1State(r.shared),
              LineState::Exclusive);
    EXPECT_EQ(r.homeDir(r.shared).lineState(mem::lineAddr(r.shared)),
              DirState::Exclusive);
    EXPECT_EQ(r.homeDir(r.shared).lineOwner(mem::lineAddr(r.shared)),
              0u);
}

TEST(Coherence, SecondLoadDowngradesToShared)
{
    Rig r;
    r.loadSync(0, r.shared);
    r.loadSync(1, r.shared);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Shared);
    EXPECT_EQ(r.mem.controller(1).l2State(r.shared), LineState::Shared);
    const Addr line = mem::lineAddr(r.shared);
    EXPECT_EQ(r.homeDir(r.shared).lineState(line), DirState::Shared);
    EXPECT_EQ(r.homeDir(r.shared).lineSharers(line), 0b11u);
}

TEST(Coherence, StoreReadsBackAndOwnsLine)
{
    Rig r;
    r.storeSync(2, r.shared, 0xdead);
    EXPECT_EQ(r.mem.controller(2).l2State(r.shared),
              LineState::Modified);
    EXPECT_EQ(r.loadSync(2, r.shared), 0xdeadu);
}

TEST(Coherence, StoreInvalidatesSharers)
{
    Rig r;
    r.loadSync(0, r.shared);
    r.loadSync(1, r.shared);
    r.loadSync(3, r.shared);
    r.storeSync(2, r.shared, 7);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Invalid);
    EXPECT_EQ(r.mem.controller(1).l2State(r.shared), LineState::Invalid);
    EXPECT_EQ(r.mem.controller(3).l2State(r.shared), LineState::Invalid);
    EXPECT_EQ(r.homeDir(r.shared).lineOwner(mem::lineAddr(r.shared)),
              2u);
}

TEST(Coherence, StoreToSharedCopyUpgradesInPlace)
{
    Rig r;
    r.loadSync(0, r.shared);
    r.loadSync(1, r.shared); // both Shared
    r.storeSync(1, r.shared, 9);
    EXPECT_EQ(r.mem.controller(1).l2State(r.shared),
              LineState::Modified);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Invalid);
    EXPECT_DOUBLE_EQ(
        r.mem.controller(1).statistics().scalarValue("upgrades"), 1.0);
}

TEST(Coherence, SilentExclusiveToModifiedUpgrade)
{
    Rig r;
    r.loadSync(0, r.shared); // E
    const double misses_before =
        r.mem.controller(0).statistics().scalarValue("l1Misses");
    r.storeSync(0, r.shared, 5); // silent E->M, pure L1 hit
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared),
              LineState::Modified);
    EXPECT_DOUBLE_EQ(
        r.mem.controller(0).statistics().scalarValue("l1Misses"),
        misses_before);
}

TEST(Coherence, ReadOfDirtyRemoteLineTransfersAndShares)
{
    Rig r;
    r.storeSync(0, r.shared, 0xabc);
    EXPECT_EQ(r.loadSync(1, r.shared), 0xabcu);
    // Old owner keeps a Shared copy (FwdGetS to an M line).
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Shared);
    EXPECT_EQ(r.mem.controller(1).l2State(r.shared), LineState::Shared);
    EXPECT_EQ(r.homeDir(r.shared).lineState(mem::lineAddr(r.shared)),
              DirState::Shared);
}

TEST(Coherence, WriteOfDirtyRemoteLineTransfersOwnership)
{
    Rig r;
    r.storeSync(0, r.shared, 1);
    r.storeSync(1, r.shared, 2);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Invalid);
    EXPECT_EQ(r.mem.controller(1).l2State(r.shared),
              LineState::Modified);
    EXPECT_EQ(r.loadSync(2, r.shared), 2u);
}

TEST(Coherence, ReadOfCleanExclusiveRemoteDowngradesOwner)
{
    Rig r;
    r.loadSync(0, r.shared); // E at node 0
    EXPECT_EQ(r.loadSync(1, r.shared), 0u);
    // Owner kept a Shared copy (clean-E FwdGetS path).
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Shared);
    const Addr line = mem::lineAddr(r.shared);
    EXPECT_EQ(r.homeDir(r.shared).lineSharers(line), 0b11u);
}

TEST(Coherence, DirtyEvictionWritesBack)
{
    Rig r;
    // Fill one L2 set with dirty lines until eviction. L2: 128 sets,
    // 8 ways; same set = stride 128*64 = 8192.
    const Addr base = r.shared;
    for (unsigned i = 0; i < 9; ++i)
        r.storeSync(0, base + i * 8192, i + 1);
    // The first line was evicted (LRU) and written back.
    EXPECT_EQ(r.mem.controller(0).l2State(base), LineState::Invalid);
    EXPECT_GE(
        r.mem.controller(0).statistics().scalarValue("l2Evictions"),
        1.0);
    // Its value survives at home and can be re-read.
    EXPECT_EQ(r.loadSync(1, base), 1u);
    // Writeback buffer eventually drains.
    r.eq.run();
    EXPECT_FALSE(r.mem.controller(0).inWritebackBuffer(base));
}

TEST(Coherence, InclusionL2EvictionKillsL1Copy)
{
    Rig r;
    const Addr base = r.shared;
    r.storeSync(0, base, 1);
    for (unsigned i = 1; i < 9; ++i)
        r.storeSync(0, base + i * 8192, i + 1);
    EXPECT_EQ(r.mem.controller(0).l1State(base), LineState::Invalid);
}

TEST(Coherence, AtomicRmwReturnsOldValueAndSerializes)
{
    Rig r;
    const Addr ctr = r.shared + 512;
    std::vector<std::uint64_t> olds;
    for (NodeId n = 0; n < 4; ++n) {
        r.mem.controller(n).atomicRmw(
            ctr, [&r, ctr](tb::Tick) { return r.mem.backend().fetchAdd(ctr, 1); },
            [&](std::uint64_t old) { olds.push_back(old); });
    }
    r.eq.run();
    ASSERT_EQ(olds.size(), 4u);
    std::sort(olds.begin(), olds.end());
    EXPECT_EQ(olds, (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(r.mem.backend().read(ctr), 4u);
}

TEST(Coherence, AtomicRmwInvalidatesCachedCopies)
{
    Rig r;
    const Addr a = r.shared;
    r.loadSync(0, a);
    r.loadSync(1, a);
    bool done = false;
    r.mem.controller(2).atomicRmw(
        a, [&r, a](tb::Tick) { return r.mem.backend().fetchAdd(a, 1); },
        [&](std::uint64_t) { done = true; });
    r.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(r.mem.controller(0).l2State(a), LineState::Invalid);
    EXPECT_EQ(r.mem.controller(1).l2State(a), LineState::Invalid);
    EXPECT_EQ(r.homeDir(a).lineState(mem::lineAddr(a)),
              DirState::Uncached);
}

TEST(Coherence, WatchFiresOnInvalidation)
{
    Rig r;
    r.loadSync(0, r.shared);
    bool fired = false;
    r.mem.controller(0).watchLine(r.shared, [&]() { fired = true; });
    r.storeSync(1, r.shared, 1);
    EXPECT_TRUE(fired);
}

TEST(Coherence, WatchIsOneShot)
{
    Rig r;
    r.loadSync(0, r.shared);
    int fires = 0;
    r.mem.controller(0).watchLine(r.shared, [&]() { ++fires; });
    r.storeSync(1, r.shared, 1);
    r.loadSync(0, r.shared);
    r.storeSync(1, r.shared, 2);
    EXPECT_EQ(fires, 1);
}

TEST(Coherence, FlagMonitorRefusesWhenAlreadyFlipped)
{
    Rig r;
    const Addr flag = r.shared + 64;
    r.storeSync(1, flag, 1);
    std::optional<bool> already;
    r.mem.controller(0).armFlagMonitor(flag, 1,
                                       [&](bool a) { already = a; });
    r.eq.run();
    ASSERT_TRUE(already.has_value());
    EXPECT_TRUE(*already);
    EXPECT_FALSE(r.mem.controller(0).flagMonitorArmed());
}

TEST(Coherence, FlagMonitorWakesOnFlip)
{
    Rig r;
    const Addr flag = r.shared + 64;
    std::optional<WakeReason> woke;
    r.mem.controller(0).setWakeHandler([&](WakeReason reason) {
        woke = reason;
        return r.eq.now();
    });
    std::optional<bool> already;
    r.mem.controller(0).armFlagMonitor(flag, 1,
                                       [&](bool a) { already = a; });
    r.eq.run();
    ASSERT_TRUE(already.has_value());
    EXPECT_FALSE(*already);
    EXPECT_TRUE(r.mem.controller(0).flagMonitorArmed());

    r.storeSync(1, flag, 1);
    ASSERT_TRUE(woke.has_value());
    EXPECT_EQ(*woke, WakeReason::ExternalFlag);
    EXPECT_FALSE(r.mem.controller(0).flagMonitorArmed());
}

TEST(Coherence, WakeTimerFiresAndCancels)
{
    Rig r;
    int wakes = 0;
    r.mem.controller(0).setWakeHandler([&](WakeReason) {
        ++wakes;
        return r.eq.now();
    });
    r.mem.controller(0).armWakeTimer(100 * kNanosecond);
    r.mem.controller(0).disarmWakeTimer();
    r.eq.run();
    EXPECT_EQ(wakes, 0);
    r.mem.controller(0).armWakeTimer(100 * kNanosecond);
    r.eq.run();
    EXPECT_EQ(wakes, 1);
}

TEST(Coherence, HybridFirstTriggerCancelsOther)
{
    Rig r;
    const Addr flag = r.shared + 64;
    int wakes = 0;
    r.mem.controller(0).setWakeHandler([&](WakeReason) {
        ++wakes;
        return r.eq.now();
    });
    std::optional<bool> already;
    r.mem.controller(0).armFlagMonitor(flag, 1,
                                       [&](bool a) { already = a; });
    r.eq.run();
    ASSERT_FALSE(*already);
    r.mem.controller(0).armWakeTimer(10 * kMicrosecond);
    // External fires first; the timer must be canceled.
    r.storeSync(1, flag, 1);
    r.eq.run();
    EXPECT_EQ(wakes, 1);
}

TEST(Coherence, NonSnoopableDefersInvalidations)
{
    Rig r;
    // Two sharers so the store below invalidates (spinners at a
    // barrier are always sharers of the flag line).
    r.loadSync(0, r.shared);
    r.loadSync(3, r.shared);
    r.mem.controller(0).setSnoopable(false);
    // The invalidation is acked (the store below completes) but the
    // local drop is deferred.
    r.storeSync(1, r.shared, 3);
    EXPECT_EQ(r.mem.controller(0).deferredInvalidations(), 1u);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Shared);
    r.mem.controller(0).setSnoopable(true);
    EXPECT_EQ(r.mem.controller(0).deferredInvalidations(), 0u);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Invalid);
}

TEST(Coherence, InvalBufferOverflowWakes)
{
    Rig r;
    // Load many distinct shared lines at node 0 (and a second
    // sharer, so writes below send invalidations rather than owner
    // interventions).
    for (unsigned i = 0; i < 20; ++i) {
        r.loadSync(0, r.shared + i * 64);
        r.loadSync(3, r.shared + i * 64);
    }
    std::optional<WakeReason> woke;
    r.mem.controller(0).setWakeHandler([&](WakeReason reason) {
        if (!woke)
            woke = reason;
        return r.eq.now();
    });
    r.mem.controller(0).setSnoopable(false);
    // Invalidate them all from another node (default buffer: 16).
    for (unsigned i = 0; i < 20; ++i)
        r.storeSync(1, r.shared + i * 64, i);
    ASSERT_TRUE(woke.has_value());
    EXPECT_EQ(*woke, WakeReason::BufferOverflow);
    r.mem.controller(0).setSnoopable(true);
}

TEST(Coherence, FlushWritesBackDirtySharedOnly)
{
    Rig r;
    const Addr priv = r.mem.addressMap().allocPrivate(0, 4096);
    r.storeSync(0, r.shared, 1);        // dirty shared
    r.storeSync(0, r.shared + 4096, 2); // dirty shared, other page
    r.storeSync(0, priv, 3);            // dirty private
    r.loadSync(0, r.shared + 8192);     // clean shared

    bool flushed = false;
    r.mem.controller(0).flushDirtyShared([&]() { flushed = true; });
    r.eq.run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared), LineState::Invalid);
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared + 4096),
              LineState::Invalid);
    // Dirty private and clean shared survive.
    EXPECT_EQ(r.mem.controller(0).l2State(priv), LineState::Modified);
    EXPECT_NE(r.mem.controller(0).l2State(r.shared + 8192),
              LineState::Invalid);
    // Values reached home.
    EXPECT_EQ(r.loadSync(1, r.shared), 1u);
    EXPECT_EQ(r.loadSync(1, r.shared + 4096), 2u);
}

TEST(Coherence, FwdToFlushedLineServedFromWritebackBuffer)
{
    Rig r;
    r.storeSync(0, r.shared, 42);
    // Flush queues the PutM; read from another node races with it.
    r.mem.controller(0).flushDirtyShared([]() {});
    EXPECT_EQ(r.loadSync(1, r.shared), 42u);
}

TEST(Coherence, SpuriousInvalidationFiresWatchWithoutValueChange)
{
    Rig r;
    r.loadSync(0, r.shared);
    bool fired = false;
    r.mem.controller(0).watchLine(r.shared, [&]() { fired = true; });
    r.mem.controller(0).injectSpuriousInvalidation(r.shared);
    EXPECT_TRUE(fired);
    // The reload still sees the old value and can re-watch: that is
    // the "false wake-up -> residual spin" behaviour.
    EXPECT_EQ(r.loadSync(0, r.shared), 0u);
}

TEST(Coherence, DoubleOutstandingAccessPanics)
{
    Rig r;
    r.mem.controller(0).load(r.shared, [](std::uint64_t) {});
    EXPECT_THROW(r.mem.controller(0).load(r.shared + 8,
                                          [](std::uint64_t) {}),
                 PanicError);
    r.eq.run();
}

TEST(Coherence, ValuesCoherentUnderMixedTraffic)
{
    Rig r(3); // 8 nodes
    const Addr a = r.shared;
    std::uint64_t expect = 0;
    for (unsigned round = 0; round < 10; ++round) {
        const NodeId writer = round % 8;
        const NodeId reader = (round + 3) % 8;
        expect = round * 17 + 1;
        r.storeSync(writer, a, expect);
        EXPECT_EQ(r.loadSync(reader, a), expect);
    }
}

} // namespace
} // namespace tb
