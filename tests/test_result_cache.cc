/**
 * @file
 * Content-addressed result cache tests: hit/miss/store accounting,
 * checksum-verified lookups with corrupted-entry eviction, unusable
 * cache directories degrading to uncached (never failing the
 * campaign), and — through svc::runCampaignPoints in local mode —
 * the warm-cache re-run contract: zero simulations, byte-identical
 * artifacts, even after the cache directory is corrupted wholesale.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>

#include "harness/campaign_cli.hh"
#include "harness/campaign_journal.hh"
#include "svc/distributed.hh"
#include "svc/result_cache.hh"

namespace tb {
namespace {

using harness::fnv1a64;
using harness::PointOutcome;
using svc::ResultCache;

std::string
tempCacheDir(const std::string& name)
{
    // Clean slate: entries persist across test-binary runs by design
    // (that is the point of the cache), so stale files would turn
    // cold-run assertions into hits.
    const std::string d = testing::TempDir() + "tb_cache_" + name;
    if (DIR* dir = ::opendir(d.c_str())) {
        while (struct dirent* e = ::readdir(dir)) {
            const std::string f = e->d_name;
            if (f != "." && f != "..")
                std::remove((d + "/" + f).c_str());
        }
        ::closedir(dir);
    }
    return d;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::string s, line;
    while (std::getline(in, line))
        s += line + "\n";
    return s;
}

TEST(ResultCache, MissThenStoreThenHit)
{
    ResultCache c;
    ASSERT_TRUE(c.open(tempCacheDir("roundtrip")));
    ASSERT_TRUE(c.active());

    std::string out;
    EXPECT_FALSE(c.lookup(0x42, &out));
    EXPECT_EQ(c.stats().misses, 1u);

    const std::string artifact = "line one\nline two, \"quoted\"\n";
    c.store(0x42, artifact);
    EXPECT_EQ(c.stats().stores, 1u);

    ASSERT_TRUE(c.lookup(0x42, &out));
    EXPECT_EQ(out, artifact);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().evictions, 0u);

    // A different key is its own entry, not a collision.
    EXPECT_FALSE(c.lookup(0x43, &out));
    std::remove(c.entryPath(0x42).c_str());
}

TEST(ResultCache, SharedAcrossInstances)
{
    const std::string dir = tempCacheDir("shared");
    {
        ResultCache c;
        ASSERT_TRUE(c.open(dir));
        c.store(0x7, "persisted artifact");
    }
    ResultCache c;
    ASSERT_TRUE(c.open(dir));
    std::string out;
    ASSERT_TRUE(c.lookup(0x7, &out)) << "cache outlives the process";
    EXPECT_EQ(out, "persisted artifact");
    std::remove(c.entryPath(0x7).c_str());
}

TEST(ResultCache, CorruptedBodyEvicted)
{
    ResultCache c;
    ASSERT_TRUE(c.open(tempCacheDir("corrupt_body")));
    c.store(0x1, "the true artifact");

    // Flip bytes in the body: the stored checksum no longer matches.
    {
        std::string raw = slurp(c.entryPath(0x1));
        const auto at = raw.find("true");
        ASSERT_NE(at, std::string::npos);
        raw.replace(at, 4, "evil");
        std::ofstream out(c.entryPath(0x1), std::ios::binary);
        out << raw;
    }

    std::string out;
    EXPECT_FALSE(c.lookup(0x1, &out))
        << "corruption must read as a miss, never a wrong artifact";
    EXPECT_EQ(c.stats().evictions, 1u);
    // The entry is gone from disk: the next store repairs it.
    std::ifstream gone(c.entryPath(0x1));
    EXPECT_FALSE(gone.good());

    c.store(0x1, "the true artifact");
    ASSERT_TRUE(c.lookup(0x1, &out));
    EXPECT_EQ(out, "the true artifact");
    std::remove(c.entryPath(0x1).c_str());
}

TEST(ResultCache, GarbageHeaderEvicted)
{
    ResultCache c;
    ASSERT_TRUE(c.open(tempCacheDir("corrupt_hdr")));
    c.store(0x2, "artifact");
    {
        std::ofstream out(c.entryPath(0x2), std::ios::binary);
        out << "not a cache entry at all";
    }
    std::string out;
    EXPECT_FALSE(c.lookup(0x2, &out));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(ResultCache, TruncatedEntryEvicted)
{
    ResultCache c;
    ASSERT_TRUE(c.open(tempCacheDir("truncated")));
    c.store(0x3, "a longer artifact that will be cut short");
    {
        const std::string raw = slurp(c.entryPath(0x3));
        std::ofstream out(c.entryPath(0x3), std::ios::binary);
        out << raw.substr(0, raw.size() / 2);
    }
    std::string out;
    EXPECT_FALSE(c.lookup(0x3, &out));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(ResultCache, ZeroLengthEntryEvicted)
{
    // The classic torn write: a daemon SIGKILLed between open and the
    // first write leaves a zero-byte entry. It must classify as a
    // miss, be evicted, and never poison a warm run.
    ResultCache c;
    ASSERT_TRUE(c.open(tempCacheDir("zero_len")));
    c.store(0x4, "artifact");
    {
        std::ofstream out(c.entryPath(0x4),
                          std::ios::binary | std::ios::trunc);
    }
    std::string out;
    EXPECT_FALSE(c.lookup(0x4, &out));
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
    std::ifstream gone(c.entryPath(0x4));
    EXPECT_FALSE(gone.good()) << "the torn entry must leave the disk";
}

TEST(ResultCache, TruncatedHeaderEvicted)
{
    // Killed mid-header: fewer bytes than "TBCACHE1 " + 16 hex + \n.
    ResultCache c;
    ASSERT_TRUE(c.open(tempCacheDir("short_hdr")));
    c.store(0x5, "artifact");
    {
        std::ofstream out(c.entryPath(0x5),
                          std::ios::binary | std::ios::trunc);
        out << "TBCACHE1 0123";
    }
    std::string out;
    EXPECT_FALSE(c.lookup(0x5, &out));
    EXPECT_EQ(c.stats().evictions, 1u);
    std::ifstream gone(c.entryPath(0x5));
    EXPECT_FALSE(gone.good());
}

TEST(ResultCache, NonHexChecksumEvicted)
{
    // Right length, wrong alphabet: the checksum field must be 16
    // lowercase hex digits, not merely 16 bytes.
    ResultCache c;
    ASSERT_TRUE(c.open(tempCacheDir("bad_hex")));
    c.store(0x6, "artifact");
    {
        std::ofstream out(c.entryPath(0x6),
                          std::ios::binary | std::ios::trunc);
        out << "TBCACHE1 0123456789abcdeZ\nbody";
    }
    std::string out;
    EXPECT_FALSE(c.lookup(0x6, &out));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(ResultCache, UnusableDirectoryDegradesToUncached)
{
    ResultCache c;
    EXPECT_FALSE(c.open("/proc/definitely/not/creatable"));
    EXPECT_FALSE(c.active());
    std::string out;
    EXPECT_FALSE(c.lookup(0x1, &out));
    c.store(0x1, "dropped"); // must be a no-op, not a crash
    EXPECT_EQ(c.stats().stores, 0u);
    EXPECT_FALSE(c.open(""));
}

/** Point task whose run() counts invocations (cache bypass proof). */
harness::PointTask
countingTask(int* runs)
{
    harness::PointTask task;
    task.run = [runs](std::size_t i) {
        ++*runs;
        return "artifact:" + std::to_string(i) + "\n";
    };
    task.key = [](std::size_t i) {
        return fnv1a64("cache-test|point:" + std::to_string(i));
    };
    return task;
}

TEST(ResultCache, WarmCacheRunPerformsZeroSimulations)
{
    harness::CampaignOptions opts;
    opts.cacheDir = tempCacheDir("warm");
    int runs = 0;
    const harness::PointTask task = countingTask(&runs);

    const svc::CampaignRun cold =
        svc::runCampaignPoints(opts, 4, task, nullptr, "cache-test");
    EXPECT_TRUE(cold.report.ok());
    EXPECT_EQ(runs, 4);
    EXPECT_EQ(cold.cache.misses, 4u);
    EXPECT_EQ(cold.cache.stores, 4u);

    const svc::CampaignRun warm =
        svc::runCampaignPoints(opts, 4, task, nullptr, "cache-test");
    EXPECT_TRUE(warm.report.ok());
    EXPECT_EQ(runs, 4) << "warm re-run must not simulate";
    EXPECT_EQ(warm.cache.hits, 4u);
    EXPECT_EQ(warm.report.count(PointOutcome::Cached), 4u);
    EXPECT_EQ(warm.report.count(PointOutcome::Ok), 0u);
    EXPECT_EQ(warm.results, cold.results) << "byte-identical";
}

TEST(ResultCache, CorruptedCacheDirectoryRecovers)
{
    harness::CampaignOptions opts;
    opts.cacheDir = tempCacheDir("recover");
    int runs = 0;
    const harness::PointTask task = countingTask(&runs);

    const svc::CampaignRun first =
        svc::runCampaignPoints(opts, 3, task, nullptr, "cache-test");
    ASSERT_TRUE(first.report.ok());
    ASSERT_EQ(runs, 3);

    // Corrupt every entry in place: garbage where artifacts were.
    ResultCache peek;
    ASSERT_TRUE(peek.open(opts.cacheDir));
    for (std::size_t i = 0; i < 3; ++i) {
        std::ofstream out(peek.entryPath(task.key(i)),
                          std::ios::binary);
        out << "TBCACHE1 0123456789abcdef\ncorrupted beyond repair";
    }

    const svc::CampaignRun again =
        svc::runCampaignPoints(opts, 3, task, nullptr, "cache-test");
    EXPECT_TRUE(again.report.ok());
    EXPECT_EQ(runs, 6) << "every corrupted point re-simulates";
    EXPECT_EQ(again.cache.evictions, 3u);
    EXPECT_EQ(again.results, first.results)
        << "corruption costs re-simulation, never wrong bytes";

    // And the re-simulation repaired the cache.
    int runs3 = runs;
    const svc::CampaignRun healed =
        svc::runCampaignPoints(opts, 3, task, nullptr, "cache-test");
    EXPECT_EQ(runs, runs3) << "healed cache serves hits again";
    EXPECT_EQ(healed.cache.hits, 3u);
    EXPECT_EQ(healed.results, first.results);
}

} // namespace
} // namespace tb
