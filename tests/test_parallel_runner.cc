/**
 * @file
 * ParallelCampaignRunner tests: serial/parallel equivalence, full
 * coverage of the index space, exception propagation and --jobs
 * parsing. The end-to-end guarantee — campaign binaries emit
 * byte-identical output under --jobs N — additionally rests on running
 * real experiments here with per-point Machines.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace {

using harness::ParallelCampaignRunner;

TEST(ParallelRunner, EveryIndexRunsExactlyOnce)
{
    const std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    ParallelCampaignRunner runner(8);
    runner.run(count, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelRunner, ZeroCountIsNoop)
{
    ParallelCampaignRunner runner(4);
    bool touched = false;
    runner.run(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ParallelRunner, ZeroJobsClampsToOne)
{
    EXPECT_EQ(ParallelCampaignRunner(0).jobs(), 1u);
    EXPECT_EQ(ParallelCampaignRunner(1).jobs(), 1u);
    EXPECT_EQ(ParallelCampaignRunner(7).jobs(), 7u);
}

TEST(ParallelRunner, SingleFailureRethrowsOriginalException)
{
    ParallelCampaignRunner runner(4);
    try {
        runner.run(100, [](std::size_t i) {
            if (i == 17)
                throw std::runtime_error("point " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        // One failure keeps the concrete exception so callers can
        // still catch the original type and message.
        EXPECT_STREQ(e.what(), "point 17");
    }
}

TEST(ParallelRunner, MultipleFailuresAggregateEveryIndex)
{
    ParallelCampaignRunner runner(4);
    try {
        runner.run(100, [](std::size_t i) {
            if (i == 17 || i == 63 || i == 99)
                throw std::runtime_error("point " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("3 campaign points failed"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find(" 17"), std::string::npos) << what;
        EXPECT_NE(what.find(" 63"), std::string::npos) << what;
        EXPECT_NE(what.find(" 99"), std::string::npos) << what;
        EXPECT_NE(what.find("first: point 17"), std::string::npos)
            << what;
    }
}

TEST(ParallelRunner, SerialPathRunsAllPointsBeforeThrowing)
{
    ParallelCampaignRunner runner(1);
    std::vector<int> hits(10, 0);
    try {
        runner.run(10, [&](std::size_t i) {
            ++hits[i];
            if (i == 3)
                throw std::runtime_error("point 3");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "point 3");
    }
    // A failing point must not starve the ones after it — parallel
    // workers would have run them, so the inline path does too.
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelRunner, ParseJobsArg)
{
    const char* none[] = {"prog"};
    const char* pair[] = {"prog", "--jobs", "4"};
    const char* eq[] = {"prog", "--jobs=8"};
    const char* mixed[] = {"prog", "--quick", "--jobs", "3"};
    auto parse = [](const char** argv, int argc) {
        return ParallelCampaignRunner::parseJobsArg(
            argc, const_cast<char**>(argv));
    };
    EXPECT_EQ(parse(none, 1), 1u);
    EXPECT_EQ(parse(pair, 3), 4u);
    EXPECT_EQ(parse(eq, 2), 8u);
    EXPECT_EQ(parse(mixed, 4), 3u);
}

TEST(ParallelRunnerDeathTest, ParseJobsArgRejectsMalformedValues)
{
    // `--jobs garbage` / `--jobs 4x` / non-positive counts must be a
    // usage error (exit 2), never a silent fallback to 1 worker.
    auto parse = [](const char** argv, int argc) {
        ParallelCampaignRunner::parseJobsArg(
            argc, const_cast<char**>(argv));
    };
    const char* garbage[] = {"prog", "--jobs", "garbage"};
    const char* trailing[] = {"prog", "--jobs", "4x"};
    const char* eq_junk[] = {"prog", "--jobs=2junk"};
    const char* zero[] = {"prog", "--jobs", "0"};
    const char* neg[] = {"prog", "--jobs=-2"};
    const char* empty[] = {"prog", "--jobs="};
    EXPECT_EXIT(parse(garbage, 3), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(trailing, 3), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(eq_junk, 2), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(zero, 3), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(neg, 2), testing::ExitedWithCode(2),
                "not a positive integer");
    EXPECT_EXIT(parse(empty, 2), testing::ExitedWithCode(2),
                "not a positive integer");
}

/**
 * The determinism contract end to end: real experiments sharded over
 * four threads must produce results byte-identical to a serial run.
 * Each point builds its own Machine from (dim, seed), so nothing is
 * shared between workers; serialized summaries are deposited by index
 * and compared after the join.
 */
TEST(ParallelRunner, ExperimentCampaignMatchesSerialByteForByte)
{
    workloads::AppProfile app = workloads::appByName("Radiosity");
    app.iterations = 3;

    struct Point
    {
        unsigned dim;
        std::uint64_t seed;
    };
    std::vector<Point> points;
    for (unsigned dim = 1; dim <= 2; ++dim)
        for (std::uint64_t seed = 1; seed <= 3; ++seed)
            points.push_back({dim, seed});

    auto campaign = [&](unsigned jobs) {
        std::vector<std::string> out(points.size());
        ParallelCampaignRunner runner(jobs);
        runner.run(points.size(), [&](std::size_t i) {
            harness::SystemConfig sys =
                harness::SystemConfig::small(points[i].dim);
            sys.seed = points[i].seed;
            const harness::ExperimentResult r = harness::runExperiment(
                sys, app, harness::ConfigKind::Thrifty);
            std::ostringstream os;
            os << r.app << ' ' << r.config << ' ' << r.execTime << ' '
               << r.totalEnergy() << ' ' << r.sync.instances << ' '
               << r.sync.sleeps;
            out[i] = os.str();
        });
        return out;
    };

    const std::vector<std::string> serial = campaign(1);
    const std::vector<std::string> parallel = campaign(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
}

} // namespace
} // namespace tb
