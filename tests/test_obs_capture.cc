/**
 * @file
 * Integration tests for campaign-level observability capture: the
 * per-episode prediction ledger and the determinism of `--trace` /
 * `--stats-json` artifacts under parallel supervised execution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>

#include "harness/campaign_cli.hh"
#include "harness/campaign_supervisor.hh"
#include "harness/experiment.hh"
#include "harness/obs_capture.hh"
#include "harness/result_serde.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace {

harness::SystemConfig
smallSys(std::uint64_t seed)
{
    harness::SystemConfig sys = harness::SystemConfig::small(3);
    sys.seed = seed;
    return sys;
}

/** Imbalanced enough that Thrifty actually sleeps on the 8-node
 *  test machine (same shape as the integration suite's miniApp). */
workloads::AppProfile
smallApp()
{
    workloads::AppProfile a;
    a.name = "mini";
    a.paperImbalance = 0.0;
    for (unsigned i = 0; i < 2; ++i) {
        workloads::PhaseSpec p;
        p.pc = 0x1000 + i;
        p.meanCompute = 600 * kMicrosecond;
        p.imbalanceCv = 0.5;
        p.memAccesses = 8;
        a.loop.push_back(p);
    }
    a.iterations = 6;
    a.sharedBytes = 64 * 1024;
    a.privateBytes = 16 * 1024;
    return a;
}

TEST(EpisodeLedger, OffByDefault)
{
    const auto r = harness::runExperiment(
        smallSys(5), smallApp(), harness::ConfigKind::Thrifty);
    EXPECT_GT(r.sync.sleeps, 0u);
    EXPECT_TRUE(r.sync.episodes.empty());
}

TEST(EpisodeLedger, OneEpisodePerSleepWithSaneBounds)
{
    harness::RunOptions ro;
    ro.episodeLedger = true;
    const auto r = harness::runExperiment(
        smallSys(5), smallApp(), harness::ConfigKind::Thrifty, ro);
    ASSERT_FALSE(r.sync.episodes.empty());
    EXPECT_EQ(r.sync.episodes.size(), r.sync.sleeps);
    for (const auto& ep : r.sync.episodes) {
        EXPECT_LE(ep.sleepTick, ep.wakeTick);
        EXPECT_FALSE(ep.sleepState.empty());
        EXPECT_FALSE(ep.wakeReason.empty());
        // A wake is early or late (or exact), never both.
        EXPECT_FALSE(ep.earlyWake() && ep.lateWake());
    }
}

TEST(TraceDeterminism, SameSeedSameConfigSameBytes)
{
    auto run = [] {
        obs::TraceSink sink(obs::kAllTraceCategories, 0);
        harness::RunOptions ro;
        ro.traceSink = &sink;
        harness::runExperiment(smallSys(9), smallApp(),
                               harness::ConfigKind::Thrifty, ro);
        return std::string(sink.events());
    };
    const std::string a = run();
    const std::string b = run();
#if TB_TRACING
    EXPECT_FALSE(a.empty());
#endif
    EXPECT_EQ(a, b);
}

/**
 * Run a three-point campaign under the supervisor with @p jobs worker
 * threads, capturing trace + stats, and return the rendered artifacts.
 */
std::pair<std::string, std::string>
runCapturedCampaign(unsigned jobs)
{
    harness::CampaignOptions opts;
    opts.tracePath = "unused-trace.json";
    opts.statsJsonPath = "unused-stats.json";
    harness::ObsCapture capture(opts, "test");

    static const harness::ConfigKind kinds[3] = {
        harness::ConfigKind::Baseline,
        harness::ConfigKind::ThriftyHalt,
        harness::ConfigKind::Thrifty,
    };

    harness::SupervisorPolicy policy;
    policy.jobs = jobs;
    harness::CampaignSupervisor sup{policy};
    harness::PointTask task;
    task.key = [](std::size_t) { return 42ull; };
    task.run = [&](std::size_t i) {
        harness::RunOptions ro;
        harness::ObsCapture::PointScope scope;
        capture.arm(i, &ro, &scope);
        const auto r = harness::runExperiment(smallSys(7), smallApp(),
                                              kinds[i], ro);
        capture.deposit(i, r, &scope, harness::configName(kinds[i]));
        return harness::serializeResult(r);
    };
    const auto report = sup.run(3, task);
    EXPECT_EQ(report.count(harness::PointOutcome::Ok), 3u);
    return {capture.renderTraceFile(), capture.renderStatsFile()};
}

TEST(ObsCapture, ArtifactsByteIdenticalAcrossJobs)
{
    const auto serial = runCapturedCampaign(1);
    const auto parallel = runCapturedCampaign(2);
    EXPECT_FALSE(serial.first.empty());
    EXPECT_FALSE(serial.second.empty());
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.second, parallel.second);
}

TEST(ObsCapture, StatsLinesCarryLedgerAndMachineStats)
{
    const auto [trace, stats] = runCapturedCampaign(1);
    // One JSONL stats line per point.
    EXPECT_EQ(std::count(stats.begin(), stats.end(), '\n'), 3);
    EXPECT_NE(stats.find("\"kind\": \"stats\""), std::string::npos);
    EXPECT_NE(stats.find("\"episodes\": ["), std::string::npos);
    EXPECT_NE(stats.find("\"predicted_bit\""), std::string::npos);
    EXPECT_NE(stats.find("\"machine\""), std::string::npos);
    // The trace document names every point's process.
    EXPECT_NE(trace.find("Baseline"), std::string::npos);
    EXPECT_NE(trace.find("Thrifty"), std::string::npos);
#if TB_TRACING
    EXPECT_NE(trace.find("\"arrive\""), std::string::npos);
#endif
}

} // namespace
} // namespace tb
