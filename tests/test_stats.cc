/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/stat_writers.hh"
#include "sim/stats.hh"

namespace tb {
namespace {

TEST(Stats, ScalarAccumulates)
{
    stats::Scalar s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s.inc();
    s.inc(2.5);
    s += 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s = 7.0;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d;
    for (double v : {2.0, 4.0, 6.0, 8.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.total(), 20.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
    EXPECT_NEAR(d.stddev(), 2.2360679, 1e-6);
    EXPECT_NEAR(d.cv(), 0.4472135, 1e-6);
}

TEST(Stats, EmptyDistributionIsZero)
{
    stats::Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.cv(), 0.0);
}

TEST(Stats, GroupGetOrCreate)
{
    stats::StatGroup g;
    g.scalar("a").inc(3.0);
    g.scalar("a").inc(4.0);
    EXPECT_DOUBLE_EQ(g.scalarValue("a"), 7.0);
    EXPECT_DOUBLE_EQ(g.scalarValue("missing"), 0.0);
    EXPECT_TRUE(g.hasScalar("a"));
    EXPECT_FALSE(g.hasScalar("missing"));
}

TEST(Stats, GroupVisitRendersNamesSorted)
{
    stats::StatGroup g;
    g.scalar("zeta") = 1.0;
    g.scalar("alpha") = 2.0;
    g.distribution("lat").sample(5.0);
    std::ostringstream os;
    obs::TextStatWriter w(os);
    g.visit(w);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("zeta"), std::string::npos);
    EXPECT_NE(out.find("lat.mean"), std::string::npos);
    EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

TEST(Stats, GroupVisitOrderIsScalarsThenDistributions)
{
    // visit() feeds scalars first, then distributions, each sorted.
    struct Recorder : stats::StatVisitor
    {
        std::vector<std::string> names;
        void scalar(const std::string& n, double) override
        {
            names.push_back(n);
        }
        void distribution(const std::string& n,
                          const stats::Distribution&) override
        {
            names.push_back("dist:" + n);
        }
    };

    stats::StatGroup g;
    g.distribution("b_dist").sample(1.0);
    g.scalar("z_scalar") = 1.0;
    g.scalar("a_scalar") = 2.0;
    g.distribution("a_dist").sample(2.0);

    Recorder rec;
    g.visit(rec);
    const std::vector<std::string> want{"a_scalar", "z_scalar",
                                        "dist:a_dist", "dist:b_dist"};
    EXPECT_EQ(rec.names, want);
}

TEST(Stats, GroupClear)
{
    stats::StatGroup g;
    g.scalar("x") = 5.0;
    g.clear();
    EXPECT_FALSE(g.hasScalar("x"));
}

} // namespace
} // namespace tb
