/**
 * @file
 * Unit tests for CC-NUMA page placement.
 */

#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using mem::AddressMap;
using mem::kPageBytes;

TEST(AddressMap, SharedPagesRoundRobin)
{
    AddressMap m(4);
    const Addr base = m.allocShared(8 * kPageBytes);
    for (unsigned p = 0; p < 8; ++p) {
        EXPECT_EQ(m.home(base + p * kPageBytes), p % 4);
        EXPECT_TRUE(m.isShared(base + p * kPageBytes));
    }
}

TEST(AddressMap, RoundRobinContinuesAcrossAllocations)
{
    AddressMap m(4);
    const Addr a = m.allocShared(kPageBytes);     // home 0
    const Addr b = m.allocShared(kPageBytes);     // home 1
    const Addr c = m.allocShared(2 * kPageBytes); // homes 2, 3
    EXPECT_EQ(m.home(a), 0u);
    EXPECT_EQ(m.home(b), 1u);
    EXPECT_EQ(m.home(c), 2u);
    EXPECT_EQ(m.home(c + kPageBytes), 3u);
}

TEST(AddressMap, PrivatePagesHomedAtOwner)
{
    AddressMap m(8);
    const Addr p = m.allocPrivate(5, 3 * kPageBytes);
    for (unsigned i = 0; i < 3; ++i) {
        EXPECT_EQ(m.home(p + i * kPageBytes), 5u);
        EXPECT_FALSE(m.isShared(p + i * kPageBytes));
    }
}

TEST(AddressMap, SubPageAllocationsRoundUp)
{
    AddressMap m(2);
    const Addr a = m.allocShared(100);
    const Addr b = m.allocShared(100);
    EXPECT_EQ(b - a, static_cast<Addr>(kPageBytes));
}

TEST(AddressMap, AddressesWithinPageShareHome)
{
    AddressMap m(4);
    const Addr a = m.allocShared(kPageBytes);
    EXPECT_EQ(m.home(a), m.home(a + 64));
    EXPECT_EQ(m.home(a), m.home(a + kPageBytes - 1));
}

TEST(AddressMap, NullAddressNeverMapped)
{
    AddressMap m(2);
    m.allocShared(kPageBytes);
    EXPECT_FALSE(m.isMapped(0));
}

TEST(AddressMap, UnmappedLookupPanics)
{
    AddressMap m(2);
    EXPECT_THROW(m.home(0x10000000), PanicError);
    EXPECT_THROW(m.isShared(0x10000000), PanicError);
}

TEST(AddressMap, RejectsBadArguments)
{
    EXPECT_THROW(AddressMap(0), FatalError);
    AddressMap m(2);
    EXPECT_THROW(m.allocShared(0), FatalError);
    EXPECT_THROW(m.allocPrivate(7, kPageBytes), FatalError);
}

TEST(AddressMap, AllocatedBytesTracksPages)
{
    AddressMap m(2);
    m.allocShared(1);
    m.allocPrivate(0, kPageBytes + 1);
    EXPECT_EQ(m.allocatedBytes(), 3 * kPageBytes);
}

} // namespace
} // namespace tb
