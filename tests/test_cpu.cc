/**
 * @file
 * Unit tests for the CPU power-state machine and its energy
 * integration.
 */

#include <gtest/gtest.h>

#include <optional>

#include "cpu/cpu.hh"
#include "mem/memory_system.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tb {
namespace {

using cpu::Cpu;
using cpu::CpuState;
using power::Bucket;

struct Rig
{
    EventQueue eq;
    noc::Network net;
    mem::MemorySystem mem;
    power::PowerParams pp;
    Cpu cpu0;
    Addr shared;

    Rig()
        : net(eq, makeNet()),
          mem(eq, net, mem::MemoryConfig{}),
          cpu0(eq, 0, mem.controller(0), pp, "cpu0")
    {
        shared = mem.addressMap().allocShared(64 * 1024);
    }

    static noc::NetworkConfig
    makeNet()
    {
        noc::NetworkConfig c;
        c.dimension = 1;
        return c;
    }

    const power::SleepState& halt() { return haltTable.at(0); }
    const power::SleepState& sleep3() { return fullTable.at(2); }

    power::SleepStateTable haltTable =
        power::SleepStateTable::haltOnly();
    power::SleepStateTable fullTable =
        power::SleepStateTable::paperDefault();
};

TEST(Cpu, StartsActiveAndAccruesCompute)
{
    Rig r;
    r.eq.schedule(kMillisecond, []() {});
    r.eq.run();
    r.cpu0.finalize();
    EXPECT_EQ(r.cpu0.state(), CpuState::Active);
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Compute), kMillisecond);
    EXPECT_NEAR(r.cpu0.energy().energy(Bucket::Compute),
                r.pp.activeWatts() * 1e-3, 1e-9);
}

TEST(Cpu, SpinAccruesAtSpinPower)
{
    Rig r;
    r.cpu0.beginSpin();
    r.eq.schedule(kMillisecond, [&]() { r.cpu0.endSpin(); });
    r.eq.run();
    r.cpu0.finalize();
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Spin), kMillisecond);
    EXPECT_NEAR(r.cpu0.energy().energy(Bucket::Spin),
                r.pp.spinWatts() * 1e-3, 1e-9);
}

TEST(Cpu, SpinStateTransitionsGuarded)
{
    Rig r;
    EXPECT_THROW(r.cpu0.endSpin(), PanicError);
    r.cpu0.beginSpin();
    EXPECT_THROW(r.cpu0.beginSpin(), PanicError);
}

TEST(Cpu, HaltSleepTimerWakeRoundTrip)
{
    Rig r;
    std::optional<mem::WakeReason> woke;
    Tick woke_at = 0;

    r.mem.controller(0).armWakeTimer(200 * kMicrosecond);
    r.cpu0.enterSleep(r.halt(), [&](mem::WakeReason reason) {
        woke = reason;
        woke_at = r.eq.now();
    });
    EXPECT_EQ(r.cpu0.state(), CpuState::TransitionDown);
    r.eq.run();
    r.cpu0.finalize();

    ASSERT_TRUE(woke.has_value());
    EXPECT_EQ(*woke, mem::WakeReason::Timer);
    // Timer at 200us + 10us transition up.
    EXPECT_EQ(woke_at, 210 * kMicrosecond);
    EXPECT_EQ(r.cpu0.state(), CpuState::Active);

    // Buckets: 10us down + 10us up transitions, 190us sleep.
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Transition),
              20 * kMicrosecond);
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Sleep), 190 * kMicrosecond);
    const double sleep_w = r.pp.sleepWatts(r.halt().powerFraction);
    EXPECT_NEAR(r.cpu0.energy().energy(Bucket::Sleep),
                sleep_w * 190e-6, 1e-9);
    const double trans_w = 0.5 * (r.pp.activeWatts() + sleep_w);
    EXPECT_NEAR(r.cpu0.energy().energy(Bucket::Transition),
                trans_w * 20e-6, 1e-9);
}

TEST(Cpu, DeepSleepFlushesAndGatesSnoop)
{
    Rig r;
    // Make a dirty shared line so the flush has work.
    bool stored = false;
    r.mem.controller(0).store(r.shared, 7, [&]() { stored = true; });
    r.eq.run();
    ASSERT_TRUE(stored);

    r.mem.controller(0).armWakeTimer(500 * kMicrosecond);
    bool woke = false;
    r.cpu0.enterSleep(r.sleep3(), [&](mem::WakeReason) { woke = true; });
    EXPECT_EQ(r.cpu0.state(), CpuState::Flushing);
    r.eq.run();
    EXPECT_TRUE(woke);
    r.cpu0.finalize();
    // The dirty shared line was flushed.
    EXPECT_EQ(r.mem.controller(0).l2State(r.shared),
              mem::LineState::Invalid);
    // Snoopability restored after wake.
    EXPECT_TRUE(r.mem.controller(0).snoopable());
    EXPECT_GT(r.cpu0.energy().time(Bucket::Sleep), 0u);
}

TEST(Cpu, WakeDuringFlushAbortsEntry)
{
    Rig r;
    // Dirty lines so the flush takes nonzero time.
    for (unsigned i = 0; i < 8; ++i) {
        bool done = false;
        r.mem.controller(0).store(r.shared + i * 64, i,
                                  [&]() { done = true; });
        r.eq.run();
        ASSERT_TRUE(done);
    }
    bool woke = false;
    r.cpu0.enterSleep(r.sleep3(), [&](mem::WakeReason) { woke = true; });
    ASSERT_EQ(r.cpu0.state(), CpuState::Flushing);
    // Trigger a wake while still flushing.
    r.cpu0.wakeRequest(mem::WakeReason::ExternalFlag);
    r.eq.run();
    r.cpu0.finalize();
    EXPECT_TRUE(woke);
    EXPECT_EQ(r.cpu0.state(), CpuState::Active);
    // Never slept: no Sleep or Transition time.
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Sleep), 0u);
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Transition), 0u);
}

TEST(Cpu, WakeDuringDownTransitionTurnsAround)
{
    Rig r;
    bool woke = false;
    Tick woke_at = 0;
    r.cpu0.enterSleep(r.halt(), [&](mem::WakeReason) {
        woke = true;
        woke_at = r.eq.now();
    });
    ASSERT_EQ(r.cpu0.state(), CpuState::TransitionDown);
    const Tick ready =
        r.cpu0.wakeRequest(mem::WakeReason::ExternalFlag);
    // Must finish the down transition (10us) then come back (10us).
    EXPECT_EQ(ready, 20 * kMicrosecond);
    r.eq.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(woke_at, 20 * kMicrosecond);
    r.cpu0.finalize();
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Transition),
              20 * kMicrosecond);
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Sleep), 0u);
}

TEST(Cpu, WakeWhileActiveIsNoOp)
{
    Rig r;
    EXPECT_EQ(r.cpu0.wakeRequest(mem::WakeReason::Timer), r.eq.now());
    EXPECT_EQ(r.cpu0.state(), CpuState::Active);
}

TEST(Cpu, SecondWakeDuringTransitionUpReturnsSameTick)
{
    Rig r;
    r.cpu0.enterSleep(r.halt(), [](mem::WakeReason) {});
    r.eq.run(15 * kMicrosecond); // now asleep
    ASSERT_EQ(r.cpu0.state(), CpuState::Sleeping);
    const Tick t1 = r.cpu0.wakeRequest(mem::WakeReason::Timer);
    ASSERT_EQ(r.cpu0.state(), CpuState::TransitionUp);
    const Tick t2 =
        r.cpu0.wakeRequest(mem::WakeReason::ExternalFlag);
    EXPECT_EQ(t1, t2);
    r.eq.run();
}

TEST(Cpu, EnterSleepFromBadStatePanics)
{
    Rig r;
    r.cpu0.enterSleep(r.halt(), [](mem::WakeReason) {});
    EXPECT_THROW(r.cpu0.enterSleep(r.halt(), [](mem::WakeReason) {}),
                 PanicError);
    r.eq.run();
}

TEST(Cpu, SuspendResumeAccounting)
{
    Rig r;
    r.eq.schedule(kMillisecond, [&]() { r.cpu0.suspendAccounting(); });
    r.eq.schedule(3 * kMillisecond,
                  [&]() { r.cpu0.resumeAccounting(); });
    r.eq.schedule(4 * kMillisecond, []() {});
    r.eq.run();
    r.cpu0.finalize();
    // 2ms of the 4ms were suspended.
    EXPECT_EQ(r.cpu0.energy().totalTime(), 2 * kMillisecond);
}

TEST(Cpu, AccrueManualLandsInBucket)
{
    Rig r;
    r.cpu0.accrueManual(Bucket::Sleep, kMillisecond, 0.66);
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Sleep), kMillisecond);
    EXPECT_NEAR(r.cpu0.energy().energy(Bucket::Sleep), 0.66e-3, 1e-12);
}

TEST(Cpu, EnterSleepFromSpinningIsAllowed)
{
    // A thread may decide to sleep after spinning for a while
    // (spin-then-sleep policies); the FSM must accept the
    // Spinning -> sleep transition and close the Spin interval.
    Rig r;
    r.cpu0.beginSpin();
    r.eq.schedule(100 * kMicrosecond, [&]() {
        r.mem.controller(0).armWakeTimer(300 * kMicrosecond);
        r.cpu0.enterSleep(r.halt(), [](mem::WakeReason) {});
    });
    r.eq.run();
    r.cpu0.finalize();
    EXPECT_EQ(r.cpu0.state(), CpuState::Active);
    EXPECT_EQ(r.cpu0.energy().time(Bucket::Spin), 100 * kMicrosecond);
    EXPECT_GT(r.cpu0.energy().time(Bucket::Sleep), 0u);
}

TEST(Cpu, SleepEntryStatsPerState)
{
    Rig r;
    bool woke = false;
    r.mem.controller(0).armWakeTimer(100 * kMicrosecond);
    r.cpu0.enterSleep(r.halt(), [&](mem::WakeReason) { woke = true; });
    r.eq.run();
    EXPECT_TRUE(woke);
    EXPECT_DOUBLE_EQ(r.cpu0.statistics().scalarValue(
                         "sleepEntries.Sleep1(Halt)"),
                     1.0);
    EXPECT_DOUBLE_EQ(
        r.cpu0.statistics().scalarValue("wakes.timer"), 1.0);
}

} // namespace
} // namespace tb
