/**
 * @file
 * Unit tests for the machine assembly, experiment runner and report
 * rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "harness/report.hh"
#include "sim/logging.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace {

using harness::ConfigKind;
using harness::ExperimentResult;
using harness::Machine;
using harness::SystemConfig;

TEST(Machine, PaperDefaultIs64Nodes)
{
    const SystemConfig sys = SystemConfig::paperDefault();
    EXPECT_EQ(sys.numNodes(), 64u);
    EXPECT_EQ(sys.noc.dimension, 6u);
    EXPECT_EQ(sys.memory.controller.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(sys.memory.controller.l2.sizeBytes, 64u * 1024);
}

TEST(Machine, BuildsOneCpuAndThreadPerNode)
{
    Machine m(SystemConfig::small(3));
    EXPECT_EQ(m.threadPtrs().size(), 8u);
    for (ThreadId t = 0; t < 8; ++t) {
        EXPECT_EQ(m.thread(t).tid(), t);
        EXPECT_EQ(m.cpu(t).node(), t);
    }
}

TEST(Machine, RunFinalizesAccounting)
{
    Machine m(SystemConfig::small(1));
    m.eventQueue().schedule(5 * kMillisecond, []() {});
    const Tick end = m.run();
    EXPECT_EQ(end, 5 * kMillisecond);
    // Both CPUs accounted as active for the whole run.
    const power::EnergyAccount total = m.totalEnergy();
    EXPECT_EQ(total.totalTime(), 2 * 5 * kMillisecond);
}

TEST(ConfigNames, LettersAndNamesStable)
{
    using harness::configLetter;
    using harness::configName;
    EXPECT_STREQ(configName(ConfigKind::Baseline), "Baseline");
    EXPECT_STREQ(configName(ConfigKind::ThriftyHalt), "Thrifty-Halt");
    EXPECT_STREQ(configName(ConfigKind::OracleHalt), "Oracle-Halt");
    EXPECT_STREQ(configName(ConfigKind::Thrifty), "Thrifty");
    EXPECT_STREQ(configName(ConfigKind::Ideal), "Ideal");
    EXPECT_STREQ(configLetter(ConfigKind::Baseline), "B");
    EXPECT_STREQ(configLetter(ConfigKind::ThriftyHalt), "H");
    EXPECT_STREQ(configLetter(ConfigKind::OracleHalt), "O");
    EXPECT_STREQ(configLetter(ConfigKind::Thrifty), "T");
    EXPECT_STREQ(configLetter(ConfigKind::Ideal), "I");
}

TEST(ConfigPresets, MatchSection51)
{
    const auto h = harness::thriftyConfigFor(ConfigKind::ThriftyHalt);
    EXPECT_EQ(h.states.size(), 1u);
    EXPECT_FALSE(h.oracle);

    const auto o = harness::thriftyConfigFor(ConfigKind::OracleHalt);
    EXPECT_EQ(o.states.size(), 1u);
    EXPECT_TRUE(o.oracle);
    EXPECT_FALSE(o.ideal);

    const auto t = harness::thriftyConfigFor(ConfigKind::Thrifty);
    EXPECT_EQ(t.states.size(), 3u);
    EXPECT_DOUBLE_EQ(t.overpredictionThreshold, 0.10);

    const auto i = harness::thriftyConfigFor(ConfigKind::Ideal);
    EXPECT_TRUE(i.oracle);
    EXPECT_TRUE(i.ideal);

    EXPECT_THROW(harness::thriftyConfigFor(ConfigKind::Baseline),
                 PanicError);
}

workloads::AppProfile
tinyApp()
{
    workloads::AppProfile a;
    a.name = "tiny";
    workloads::PhaseSpec p;
    p.pc = 0x1;
    p.meanCompute = 200 * kMicrosecond;
    p.imbalanceCv = 0.2;
    p.memAccesses = 4;
    a.loop.push_back(p);
    a.iterations = 4;
    return a;
}

TEST(Experiment, ResultDerivations)
{
    const SystemConfig sys = SystemConfig::small(2);
    const auto r =
        harness::runExperiment(sys, tinyApp(), ConfigKind::Baseline);
    EXPECT_EQ(r.app, "tiny");
    EXPECT_EQ(r.config, "Baseline");
    EXPECT_EQ(r.threads, 4u);
    EXPECT_GT(r.totalEnergy(), 0.0);
    EXPECT_GT(r.imbalance(), 0.0);
    EXPECT_LT(r.imbalance(), 1.0);
}

TEST(Report, BreakdownNormalizesToBaseline)
{
    const SystemConfig sys = SystemConfig::small(2);
    std::vector<ExperimentResult> group{
        harness::runExperiment(sys, tinyApp(), ConfigKind::Baseline),
        harness::runExperiment(sys, tinyApp(), ConfigKind::Thrifty)};

    const auto& base = harness::report::baselineOf(group);
    EXPECT_EQ(&base, &group[0]);
    EXPECT_DOUBLE_EQ(
        harness::report::normalizedTotal(base, base, true), 100.0);
    EXPECT_DOUBLE_EQ(
        harness::report::normalizedTotal(base, base, false), 100.0);

    std::ostringstream os;
    harness::report::printBreakdownGroup(os, group, true);
    const std::string out = os.str();
    EXPECT_NE(out.find("Baseline"), std::string::npos);
    EXPECT_NE(out.find("Thrifty"), std::string::npos);
    EXPECT_NE(out.find("Compute"), std::string::npos);
    EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(Report, MissingBaselineFatal)
{
    const SystemConfig sys = SystemConfig::small(1);
    std::vector<ExperimentResult> group{
        harness::runExperiment(sys, tinyApp(), ConfigKind::Thrifty)};
    EXPECT_THROW(harness::report::baselineOf(group), FatalError);
}

TEST(Report, JsonContainsAllFields)
{
    const SystemConfig sys = SystemConfig::small(1);
    const auto r =
        harness::runExperiment(sys, tinyApp(), ConfigKind::Thrifty);
    std::ostringstream os;
    harness::report::printJson(os, r);
    const std::string j = os.str();
    for (const char* key :
         {"\"app\"", "\"config\"", "\"threads\"", "\"exec_time_s\"",
          "\"imbalance\"", "\"energy_j\"", "\"time_s\"", "\"sync\"",
          "\"instances\"", "\"sleeps\"", "\"cutoffs\""}) {
        EXPECT_NE(j.find(key), std::string::npos) << key;
    }
    // Crude structural sanity: balanced braces.
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
}

TEST(Report, StackedBarsRenderLegend)
{
    const SystemConfig sys = SystemConfig::small(1);
    std::vector<ExperimentResult> group{
        harness::runExperiment(sys, tinyApp(), ConfigKind::Baseline)};
    std::ostringstream os;
    harness::report::printStackedBars(os, group, true);
    EXPECT_NE(os.str().find("legend"), std::string::npos);
}

TEST(Experiment, CustomConfigOverridesPreset)
{
    const SystemConfig sys = SystemConfig::small(2);
    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
    cfg.states = power::SleepStateTable(); // never sleep
    harness::RunOptions opt;
    opt.customConfig = &cfg;
    const auto r = harness::runExperiment(sys, tinyApp(),
                                          ConfigKind::Thrifty, opt);
    EXPECT_EQ(r.sync.sleeps, 0u);
}

} // namespace
} // namespace tb
