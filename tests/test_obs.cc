/**
 * @file
 * Unit tests for the observability layer: the shared JSON writer, the
 * trace sink + Chrome export, and the stat visitors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/json_writer.hh"
#include "obs/stat_writers.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"

namespace tb {
namespace {

TEST(JsonWriter, ObjectsArraysAndSeparatorStyle)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("a", 1).field("b", "x");
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("nested").beginObject().field("c", true).endObject();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"a\": 1, \"b\": \"x\", \"list\": [1, 2], "
              "\"nested\": {\"c\": true}}");
}

TEST(JsonWriter, EscapePolicy)
{
    EXPECT_EQ(obs::JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(obs::JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(obs::JsonWriter::escape("\n\r\t"), "\\n\\r\\t");
    EXPECT_EQ(obs::JsonWriter::escape(std::string("\x01", 1)),
              "\\u0001");
    // Non-control high bytes pass through untouched (UTF-8 stays
    // UTF-8).
    EXPECT_EQ(obs::JsonWriter::escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(JsonWriter, DoublesRoundTripAtShortestForm)
{
    // Simple values must not pay 17 digits.
    EXPECT_EQ(obs::formatDouble(0.25), "0.25");
    EXPECT_EQ(obs::formatDouble(0.0), "0");
    EXPECT_EQ(obs::formatDouble(-3.0), "-3");
    // Whatever the form, strtod must give the exact bits back.
    for (double v : {1.0 / 3.0, 0.1, 1e-300, 1.7976931348623157e308,
                     36671479.4771562, -2.5e-7}) {
        const std::string s = obs::formatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("nan", std::nan(""))
        .field("inf", std::numeric_limits<double>::infinity());
    w.key("empty").null();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"nan\": null, \"inf\": null, \"empty\": null}");
}

TEST(TraceCategories, ParseAndNames)
{
    unsigned mask = 0;
    EXPECT_TRUE(obs::parseCategories("all", &mask));
    EXPECT_EQ(mask, obs::kAllTraceCategories);
    EXPECT_TRUE(obs::parseCategories("sim,thrifty", &mask));
    EXPECT_EQ(mask,
              static_cast<unsigned>(obs::TraceCategory::Sim) |
                  static_cast<unsigned>(obs::TraceCategory::Thrifty));
    EXPECT_FALSE(obs::parseCategories("bogus", &mask));
    EXPECT_FALSE(obs::parseCategories("", &mask));
    EXPECT_FALSE(obs::parseCategories("sim,,mem", &mask));
    EXPECT_STREQ(obs::categoryName(obs::TraceCategory::Noc), "noc");
}

TEST(TraceSink, MaskGatesCategories)
{
    obs::TraceSink sink(
        static_cast<unsigned>(obs::TraceCategory::Thrifty), 3);
    EXPECT_TRUE(sink.enabled(obs::TraceCategory::Thrifty));
    EXPECT_FALSE(sink.enabled(obs::TraceCategory::Sim));
    EXPECT_EQ(sink.pid(), 3u);

    sink.instant(obs::TraceCategory::Thrifty, "arrive", 1000, 2,
                 {{"pc", 77u}});
    sink.complete(obs::TraceCategory::Thrifty, "sleep", 2000, 500, 2);
    EXPECT_EQ(sink.eventCount(), 2u);
    EXPECT_NE(sink.events().find("\"arrive\""), std::string::npos);
    EXPECT_NE(sink.events().find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(sink.events().find("\"pid\": 3"), std::string::npos);
}

TEST(TraceSink, PerCategoryCapDropsDeterministically)
{
    obs::TraceSink sink(obs::kAllTraceCategories, 0,
                        /*maxEventsPerCategory=*/4);
    for (int i = 0; i < 10; ++i)
        sink.instant(obs::TraceCategory::Sim, "e", i, 0);
    // The mem category has its own budget, unaffected by sim's.
    sink.instant(obs::TraceCategory::Mem, "m", 0, 0);
    EXPECT_EQ(sink.eventCount(), 5u);
    EXPECT_EQ(sink.dropped(), 6u);
}

TEST(ChromeTrace, DocumentStructureAndTruncationMarker)
{
    obs::TraceSink sink(obs::kAllTraceCategories, 0,
                        /*maxEventsPerCategory=*/1);
    sink.instant(obs::TraceCategory::Sim, "kept", 1000000, 0);
    sink.instant(obs::TraceCategory::Sim, "droppedEvent", 2000000, 0);

    obs::TraceChunk chunk;
    chunk.pid = sink.pid();
    chunk.label = "Ocean/Thrifty";
    chunk.events = sink.events();
    chunk.dropped = sink.dropped();

    std::ostringstream os;
    obs::writeChromeTrace(os, {chunk});
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("process_name"), std::string::npos);
    EXPECT_NE(doc.find("Ocean/Thrifty"), std::string::npos);
    EXPECT_NE(doc.find("trace.truncated"), std::string::npos);
    EXPECT_EQ(doc.find("droppedEvent"), std::string::npos);
}

TEST(StatWriters, TextKeepsZeroConventionJsonEmitsNull)
{
    stats::StatGroup g;
    g.scalar("hits") = 3.0;
    g.distribution("empty"); // created, never sampled

    std::ostringstream text;
    obs::TextStatWriter tw(text);
    g.visit(tw);
    EXPECT_NE(text.str().find("empty.min"), std::string::npos);
    EXPECT_EQ(text.str().find("null"), std::string::npos);

    std::ostringstream json;
    obs::JsonWriter w(json);
    w.beginObject();
    obs::JsonStatWriter jw(w);
    g.visit(jw);
    w.endObject();
    EXPECT_NE(json.str().find("\"min\": null"), std::string::npos);
    EXPECT_NE(json.str().find("\"max\": null"), std::string::npos);
    EXPECT_NE(json.str().find("\"hits\": 3"), std::string::npos);
}

TEST(StatWriters, PopulatedDistributionJsonCarriesMoments)
{
    stats::StatGroup g;
    g.distribution("lat").sample(2.0);
    g.distribution("lat").sample(4.0);

    std::ostringstream json;
    obs::JsonWriter w(json);
    w.beginObject();
    obs::JsonStatWriter jw(w);
    g.visit(jw);
    w.endObject();
    EXPECT_EQ(json.str(),
              "{\"lat\": {\"count\": 2, \"total\": 6, \"mean\": 3, "
              "\"stddev\": 1, \"min\": 2, \"max\": 4}}");
}

TEST(StatWriters, TeeForwardsToEverySink)
{
    stats::StatGroup g;
    g.scalar("x") = 1.0;

    std::ostringstream a, b;
    obs::TextStatWriter wa(a), wb(b);
    obs::TeeStatVisitor tee({&wa, &wb});
    g.visit(tee);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find('x'), std::string::npos);
}

} // namespace
} // namespace tb
