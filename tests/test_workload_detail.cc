/**
 * @file
 * Detailed workload-generator tests: determinism of the draw streams,
 * spike injection, swing behaviour, and the memory-access mix.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workloads/app_profile.hh"
#include "workloads/synthetic_program.hh"

namespace tb {
namespace {

using harness::ConfigKind;
using harness::SystemConfig;
using workloads::AppProfile;
using workloads::PhaseSpec;

AppProfile
baseApp()
{
    AppProfile a;
    a.name = "detail";
    PhaseSpec p;
    p.pc = 0x1;
    p.meanCompute = 300 * kMicrosecond;
    p.imbalanceCv = 0.1;
    p.memAccesses = 10;
    a.loop.push_back(p);
    a.iterations = 6;
    a.sharedBytes = 64 * 1024;
    a.privateBytes = 16 * 1024;
    return a;
}

TEST(WorkloadDetail, SpikesLengthenExecution)
{
    SystemConfig sys = SystemConfig::small(2);
    AppProfile plain = baseApp();
    AppProfile spiky = baseApp();
    spiky.loop[0].spikeProbability = 0.5;
    spiky.loop[0].spikeFactor = 30.0;

    const auto r_plain =
        harness::runExperiment(sys, plain, ConfigKind::Baseline);
    const auto r_spiky =
        harness::runExperiment(sys, spiky, ConfigKind::Baseline);
    // A 30x spike on ~half the instances stretches the run a lot.
    EXPECT_GT(static_cast<double>(r_spiky.execTime),
              2.0 * static_cast<double>(r_plain.execTime));
    // And inflates the measured imbalance (one thread very late).
    EXPECT_GT(r_spiky.imbalance(), r_plain.imbalance());
}

TEST(WorkloadDetail, SwingsWidenIntervalSpread)
{
    SystemConfig sys = SystemConfig::small(2);
    AppProfile plain = baseApp();
    AppProfile swingy = baseApp();
    swingy.loop[0].swingProbability = 0.5;
    swingy.loop[0].swingFactor = 6.0;

    harness::RunOptions opt;
    opt.trace = true;
    thrifty::ThriftyConfig cfg = thrifty::ThriftyConfig::thrifty();
    cfg.states = power::SleepStateTable(); // measurement mode
    opt.customConfig = &cfg;

    auto spread = [&](const AppProfile& app) {
        const auto r = harness::runExperiment(
            sys, app, ConfigKind::Thrifty, opt);
        double lo = 1e300, hi = 0.0;
        for (const auto& e : r.sync.trace) {
            lo = std::min(lo, static_cast<double>(e.bit));
            hi = std::max(hi, static_cast<double>(e.bit));
        }
        return hi / lo;
    };
    EXPECT_GT(spread(swingy), 3.0 * spread(plain));
}

TEST(WorkloadDetail, MemoryAccessesActuallyIssued)
{
    SystemConfig sys = SystemConfig::small(2);
    AppProfile with = baseApp();
    AppProfile without = baseApp();
    without.loop[0].memAccesses = 0;

    // Compare cache activity: the no-access run only touches barrier
    // lines.
    harness::Machine m1(sys), m2(sys);
    thrifty::SyncStats s1, s2;
    harness::ConfigBarrierProvider p1(m1, ConfigKind::Baseline,
                                      nullptr, s1);
    harness::ConfigBarrierProvider p2(m2, ConfigKind::Baseline,
                                      nullptr, s2);
    workloads::SyntheticProgram prog1(m1.eventQueue(), m1.memory(),
                                      m1.threadPtrs(), with, p1, 1);
    workloads::SyntheticProgram prog2(m2.eventQueue(), m2.memory(),
                                      m2.threadPtrs(), without, p2, 1);
    prog1.start();
    m1.run();
    prog2.start();
    m2.run();
    ASSERT_TRUE(prog1.finished());
    ASSERT_TRUE(prog2.finished());

    double hits1 = 0, hits2 = 0;
    for (NodeId n = 0; n < 4; ++n) {
        hits1 += m1.memory().controller(n).statistics().scalarValue(
                     "l1Hits") +
                 m1.memory().controller(n).statistics().scalarValue(
                     "l1Misses");
        hits2 += m2.memory().controller(n).statistics().scalarValue(
                     "l1Hits") +
                 m2.memory().controller(n).statistics().scalarValue(
                     "l1Misses");
    }
    // 4 threads x 6 instances x 10 accesses = 240 extra demand
    // accesses (plus identical barrier traffic).
    EXPECT_NEAR(hits1 - hits2, 240.0, 10.0);
}

TEST(WorkloadDetail, SeedChangesDrawsButNotStructure)
{
    SystemConfig sys = SystemConfig::small(2);
    AppProfile app = baseApp();
    sys.seed = 10;
    const auto a = harness::runExperiment(sys, app, ConfigKind::Baseline);
    sys.seed = 11;
    const auto b = harness::runExperiment(sys, app, ConfigKind::Baseline);
    EXPECT_EQ(a.sync.instances, b.sync.instances);
    EXPECT_EQ(a.sync.arrivals, b.sync.arrivals);
    EXPECT_NE(a.execTime, b.execTime);
}

TEST(WorkloadDetail, PrologueRunsExactlyOnce)
{
    SystemConfig sys = SystemConfig::small(2);
    AppProfile app = baseApp();
    PhaseSpec pre;
    pre.pc = 0x99;
    pre.meanCompute = 100 * kMicrosecond;
    pre.imbalanceCv = 0.05;
    app.prologue.push_back(pre);

    const auto r = harness::runExperiment(sys, app, ConfigKind::Baseline);
    EXPECT_EQ(r.sync.instances, app.totalInstances());
    EXPECT_EQ(app.totalInstances(), 1u + 6u);
}

} // namespace
} // namespace tb
