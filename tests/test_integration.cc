/**
 * @file
 * Full-system integration tests: complete machines running synthetic
 * applications under every configuration, checking the paper's
 * qualitative claims end to end.
 */

#include <gtest/gtest.h>

#include <array>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/logging.hh"
#include "workloads/app_profile.hh"

namespace tb {
namespace {

using harness::ConfigKind;
using harness::ExperimentResult;
using harness::RunOptions;
using harness::SystemConfig;
using harness::runExperiment;
using workloads::AppProfile;
using workloads::PhaseSpec;

/** A small, fast app for the 8-node test machine. */
AppProfile
miniApp(unsigned barriers, unsigned iterations, Tick mean_compute,
        double imbalance_cv, double swing_prob = 0.0)
{
    AppProfile a;
    a.name = "mini";
    a.paperImbalance = 0.0;
    for (unsigned i = 0; i < barriers; ++i) {
        PhaseSpec p;
        p.pc = 0x1000 + i;
        p.meanCompute = mean_compute;
        p.imbalanceCv = imbalance_cv;
        p.memAccesses = 8;
        p.swingProbability = swing_prob;
        p.swingFactor = 6.0;
        a.loop.push_back(p);
    }
    a.iterations = iterations;
    a.sharedBytes = 64 * 1024;
    a.privateBytes = 16 * 1024;
    return a;
}

SystemConfig
testSystem()
{
    SystemConfig sys = SystemConfig::small(3); // 8 nodes
    sys.seed = 42;
    return sys;
}

TEST(Integration, BaselineCompletesAndAccountingBalances)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 6, 400 * kMicrosecond, 0.2);
    ExperimentResult r =
        runExperiment(sys, app, ConfigKind::Baseline);

    EXPECT_GT(r.execTime, 0u);
    EXPECT_EQ(r.sync.instances, 12u);
    EXPECT_EQ(r.sync.arrivals, 12u * 8);
    // Baseline never sleeps or transitions.
    EXPECT_EQ(r.time[static_cast<int>(power::Bucket::Sleep)], 0u);
    EXPECT_EQ(r.time[static_cast<int>(power::Bucket::Transition)], 0u);
    EXPECT_GT(r.time[static_cast<int>(power::Bucket::Spin)], 0u);
    EXPECT_GT(r.totalEnergy(), 0.0);
}

TEST(Integration, AllConfigsCompleteSameWorkload)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 8, 400 * kMicrosecond, 0.3);
    for (ConfigKind k :
         {ConfigKind::Baseline, ConfigKind::ThriftyHalt,
          ConfigKind::OracleHalt, ConfigKind::Thrifty,
          ConfigKind::Ideal}) {
        ExperimentResult r = runExperiment(sys, app, k);
        EXPECT_EQ(r.sync.instances, 16u) << harness::configName(k);
        EXPECT_GT(r.execTime, 0u) << harness::configName(k);
    }
}

TEST(Integration, ThriftySavesEnergyOnImbalancedApp)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 10, 600 * kMicrosecond, 0.5);

    ExperimentResult base =
        runExperiment(sys, app, ConfigKind::Baseline);
    ExperimentResult thrifty =
        runExperiment(sys, app, ConfigKind::Thrifty);

    EXPECT_LT(thrifty.totalEnergy(), base.totalEnergy());
    EXPECT_GT(thrifty.sync.sleeps, 0u);
    // Performance degradation stays bounded (paper: ~2% on targets;
    // allow slack on the tiny test machine).
    EXPECT_LT(static_cast<double>(thrifty.execTime),
              1.10 * static_cast<double>(base.execTime));
}

TEST(Integration, EnergyOrderingAcrossConfigs)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 10, 800 * kMicrosecond, 0.5);

    ExperimentResult base =
        runExperiment(sys, app, ConfigKind::Baseline);
    ExperimentResult halt =
        runExperiment(sys, app, ConfigKind::ThriftyHalt);
    ExperimentResult thrifty =
        runExperiment(sys, app, ConfigKind::Thrifty);
    ExperimentResult ideal =
        runExperiment(sys, app, ConfigKind::Ideal);

    // Ideal <= Thrifty <= Thrifty-Halt <= Baseline (the Figure 5
    // ordering on imbalanced apps). Small tolerance for noise.
    EXPECT_LE(ideal.totalEnergy(), 1.02 * thrifty.totalEnergy());
    EXPECT_LE(thrifty.totalEnergy(), 1.02 * halt.totalEnergy());
    EXPECT_LT(halt.totalEnergy(), base.totalEnergy());
}

TEST(Integration, OracleHaltNeverSlower)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 8, 500 * kMicrosecond, 0.4);

    ExperimentResult base =
        runExperiment(sys, app, ConfigKind::Baseline);
    ExperimentResult oracle =
        runExperiment(sys, app, ConfigKind::OracleHalt);

    // Perfect prediction: no mispredicted wake-ups, so execution time
    // matches Baseline within the spin-exit noise.
    EXPECT_LT(static_cast<double>(oracle.execTime),
              1.02 * static_cast<double>(base.execTime));
    EXPECT_LT(oracle.totalEnergy(), base.totalEnergy());
}

TEST(Integration, BalancedAppGainsLittle)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 8, 400 * kMicrosecond, 0.02);

    ExperimentResult base =
        runExperiment(sys, app, ConfigKind::Baseline);
    ExperimentResult thrifty =
        runExperiment(sys, app, ConfigKind::Thrifty);

    const double saving =
        1.0 - thrifty.totalEnergy() / base.totalEnergy();
    EXPECT_LT(saving, 0.10);
    EXPECT_GT(saving, -0.05); // and must not cost much either
}

TEST(Integration, TraceRecordsBitComputeStall)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(3, 4, 300 * kMicrosecond, 0.3);
    RunOptions opt;
    opt.trace = true;
    ExperimentResult r =
        runExperiment(sys, app, ConfigKind::Thrifty, opt);

    ASSERT_FALSE(r.sync.trace.empty());
    // Every departure is traced: instances * threads.
    EXPECT_EQ(r.sync.trace.size(), r.sync.instances * 8);
    for (const auto& e : r.sync.trace) {
        EXPECT_EQ(e.bit, e.compute + e.stall);
        EXPECT_GT(e.bit, 0u);
    }
}

TEST(Integration, DeterministicAcrossRuns)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 6, 400 * kMicrosecond, 0.3);
    ExperimentResult a =
        runExperiment(sys, app, ConfigKind::Thrifty);
    ExperimentResult b =
        runExperiment(sys, app, ConfigKind::Thrifty);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
    EXPECT_EQ(a.sync.sleeps, b.sync.sleeps);
}

TEST(Integration, SwingingIntervalsTriggerCutoff)
{
    const SystemConfig sys = testSystem();
    // Ocean-like: short intervals that swing 6x up/down.
    AppProfile app = miniApp(3, 16, 120 * kMicrosecond, 0.15, 0.5);

    ExperimentResult r = runExperiment(sys, app, ConfigKind::Thrifty);
    EXPECT_GT(r.sync.cutoffs, 0u);

    // Without the cutoff the same workload degrades more.
    thrifty::ThriftyConfig no_cutoff = thrifty::ThriftyConfig::thrifty();
    no_cutoff.overpredictionThreshold = -1.0;
    RunOptions opt;
    opt.customConfig = &no_cutoff;
    ExperimentResult unguarded =
        runExperiment(sys, app, ConfigKind::Thrifty, opt);
    EXPECT_EQ(unguarded.sync.cutoffs, 0u);
    EXPECT_LE(static_cast<double>(r.execTime),
              1.01 * static_cast<double>(unguarded.execTime));
}

TEST(Integration, TimeAccountingCoversExecution)
{
    const SystemConfig sys = testSystem();
    AppProfile app = miniApp(2, 6, 400 * kMicrosecond, 0.3);
    ExperimentResult r = runExperiment(sys, app, ConfigKind::Thrifty);

    Tick total = 0;
    for (Tick t : r.time)
        total += t;
    // Every CPU is accounted from tick 0 to (at least) program end.
    EXPECT_GE(total, static_cast<Tick>(0.99 * 8 *
                                       static_cast<double>(r.execTime)));
}

} // namespace
} // namespace tb
